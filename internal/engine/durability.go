package engine

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log"
	"time"

	"repro/internal/cache"
	"repro/internal/collector"
	"repro/internal/floorplan"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/obs/trace"
	"repro/internal/rfid"
	"repro/internal/wal"
)

// DurabilityConfig configures the write-ahead log and snapshot store.
type DurabilityConfig struct {
	// Dir is the data directory holding segments and snapshots. Empty
	// disables durability.
	Dir string
	// Fsync selects when appended records are forced to disk: SyncAlways
	// fsyncs before every Ingest returns (no acked flushed second is ever
	// lost), SyncInterval fsyncs at most once per FsyncInterval, SyncOff
	// leaves flushing to the OS.
	Fsync wal.SyncPolicy
	// FsyncInterval is the minimum spacing between fsyncs under
	// SyncInterval. 0 means 1 second.
	FsyncInterval time.Duration
	// SnapshotEvery writes an engine snapshot every N acked seconds, so
	// recovery is a snapshot load plus a bounded replay. 0 disables periodic
	// snapshots (one is still written on Close).
	SnapshotEvery int
	// SegmentBytes is the WAL segment rotation size. 0 means the wal
	// package default (8 MiB).
	SegmentBytes int64
	// KeepSnapshots is how many snapshots to retain; older ones (and the
	// segments only they need) are pruned. 0 means 2.
	KeepSnapshots int
	// Retry bounds the transient-error retries on WAL appends and fsyncs.
	// Only transient failures (wal.IsTransient) are retried; permanent ones
	// fail stop immediately (single engine) or quarantine the shard
	// (sharded engine).
	Retry RetryConfig
	// FS is the filesystem every WAL and snapshot byte goes through. nil
	// means the real OS filesystem; tests inject fault-wrapped filesystems
	// (internal/sim/errfs).
	FS wal.FS
	// HealBaseDelay and HealMaxDelay pace the sharded engine's background
	// self-heal loop: attempts to re-open a quarantined shard back off
	// exponentially between them. 0 means 500ms and 15s.
	HealBaseDelay time.Duration
	HealMaxDelay  time.Duration
}

// RetryConfig bounds the exponential-backoff retry of transient WAL errors.
type RetryConfig struct {
	// Max is the number of re-attempts after the first failure. 0 means the
	// default (3); negative disables retries.
	Max int
	// BaseDelay is the wait before the first retry, doubled per attempt up
	// to MaxDelay, with deterministic ±50% jitter. 0 means 2ms and 100ms.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (rc RetryConfig) max() int {
	if rc.Max < 0 {
		return 0
	}
	if rc.Max == 0 {
		return 3
	}
	return rc.Max
}

// delay returns the backoff before retry attempt (0-based). salt
// deterministically perturbs the wait so lockstep retries across shards
// spread out, without any global randomness source.
func (rc RetryConfig) delay(attempt int, salt uint64) time.Duration {
	base, cap := rc.BaseDelay, rc.MaxDelay
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	if cap <= 0 {
		cap = 100 * time.Millisecond
	}
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	// splitmix64 over (salt, attempt) → jitter in [d/2, d).
	x := salt + uint64(attempt)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if d > 1 {
		d = d/2 + time.Duration(x%uint64(d))/2
	}
	return d
}

// Enabled reports whether durability is configured at all.
func (d DurabilityConfig) Enabled() bool { return d.Dir != "" }

func (d DurabilityConfig) fsyncInterval() time.Duration {
	if d.FsyncInterval <= 0 {
		return time.Second
	}
	return d.FsyncInterval
}

func (d DurabilityConfig) keepSnapshots() int {
	if d.KeepSnapshots <= 0 {
		return 2
	}
	return d.KeepSnapshots
}

func (d DurabilityConfig) fsys() wal.FS {
	if d.FS == nil {
		return wal.OS
	}
	return d.FS
}

func (d DurabilityConfig) healBaseDelay() time.Duration {
	if d.HealBaseDelay <= 0 {
		return 500 * time.Millisecond
	}
	return d.HealBaseDelay
}

func (d DurabilityConfig) healMaxDelay() time.Duration {
	if d.HealMaxDelay <= 0 {
		return 15 * time.Second
	}
	return d.HealMaxDelay
}

// snapFailBackoff is how many consecutive snapshot failures are retried on
// the very next flushed second before the schedule backs off a full
// SnapshotEvery window (bounded retry: a persistently failing snapshot store
// must not turn every flush into a doomed write).
const snapFailBackoff = 3

// retryTransient runs op, retrying transient failures (wal.IsTransient) with
// bounded exponential backoff and deterministic jitter. reset (nil ok) runs
// before each re-attempt to undo partial on-disk effects of the failure —
// Log.ResetTail for appends. Every wait is counted and traced so retries are
// visible, never silent. The returned error is the last attempt's (nil on
// success); permanent errors return immediately.
func retryTransient(rc RetryConfig, tel *Telemetry, tr *trace.Context, shard int, salt uint64,
	reset func() error, op func() error) error {
	err := op()
	for attempt, max := 0, rc.max(); err != nil && attempt < max && wal.IsTransient(err); attempt++ {
		wstart := time.Now()
		time.Sleep(rc.delay(attempt, salt))
		tel.walRetries.Inc()
		tr.Since("wal-retry", shard, wstart)
		if reset != nil {
			if rerr := reset(); rerr != nil {
				return err
			}
		}
		err = op()
	}
	return err
}

// RecoveryInfo describes what Open found and did in the data directory.
type RecoveryInfo struct {
	// Enabled is false when the system was built without durability.
	Enabled bool `json:"enabled"`
	// SnapshotRestored reports whether a snapshot was loaded; SnapshotSeq is
	// the last WAL sequence it covered. SnapshotsSkipped counts corrupt
	// snapshots passed over to reach a readable one.
	SnapshotRestored bool   `json:"snapshotRestored"`
	SnapshotSeq      uint64 `json:"snapshotSeq"`
	SnapshotsSkipped int    `json:"snapshotsSkipped"`
	// RecordsReplayed / ReadingsReplayed count the WAL records (acked
	// seconds) and raw readings applied on top of the snapshot.
	RecordsReplayed  int `json:"recordsReplayed"`
	ReadingsReplayed int `json:"readingsReplayed"`
	// Corrupt reports a damaged WAL tail: TruncatedBytes were cut from the
	// last usable segment and SegmentsRemoved unreachable segments deleted.
	Corrupt         bool  `json:"corrupt"`
	TruncatedBytes  int64 `json:"truncatedBytes"`
	SegmentsRemoved int   `json:"segmentsRemoved"`
	// LastSeq is the WAL position appends continue from.
	LastSeq uint64 `json:"lastSeq"`
}

// Recovery returns what Open found in the data directory (zero for systems
// built with New).
func (s *System) Recovery() RecoveryInfo { return s.recovery }

// DurabilityEnabled reports whether this system writes a WAL.
func (s *System) DurabilityEnabled() bool { return s.wal != nil }

// WALError returns the sticky WAL failure that fail-stopped ingestion, or
// nil while the log is healthy.
func (s *System) WALError() error { return s.walErr }

// StreamID derives the durability stream identity: an FNV-64a hash over the
// floor plan, the reader deployment, the seed, and the history mode. A WAL
// or snapshot written under a different identity refuses to load with a
// *wal.MismatchError instead of replaying readings into the wrong world.
func (c Config) StreamID(plan *floorplan.Plan, dep *rfid.Deployment) (uint64, error) {
	h := fnv.New64a()
	payload := struct {
		Rooms    []floorplan.Room
		Hallways []floorplan.Hallway
		Doors    []floorplan.Door
		Links    []floorplan.Link
		Readers  []rfid.Reader
		Pairs    []rfid.DirectedPair
		Seed     int64
		History  bool
	}{plan.Rooms(), plan.Hallways(), plan.Doors(), plan.Links(),
		dep.Readers(), dep.DirectedPairs(), c.Seed, c.KeepHistory}
	if err := json.NewEncoder(h).Encode(payload); err != nil {
		return 0, fmt.Errorf("engine: hash stream identity: %w", err)
	}
	return h.Sum64(), nil
}

// engineSnap is the gob-encoded snapshot payload: everything needed to
// resume ingestion and answer queries identically. The system's free-running
// Monte Carlo source (PTKNN, symbolic kNN) is deliberately absent — query
// determinism rests on per-object streams derived from (Seed, object, last
// reading time), which the restored collector state reproduces exactly.
type engineSnap struct {
	Stats          Stats
	Collector      collector.Snapshot
	CacheEntries   []cache.Entry
	CacheHits      int
	CacheMisses    int
	Events         []model.Event
	EventOff       int
	ReorderStarted bool
	Watermark      model.Time
	MaxSeen        model.Time
	Drops          ingest.Drops
	Forced         int
}

// Open assembles a System like New and, when cfg.Durability is enabled,
// recovers it from the data directory: the newest readable snapshot is
// restored, the WAL replayed from there (repairing a torn or corrupt tail
// in place), and every subsequent acked second is logged. Recovery is
// deterministic — the recovered system answers queries bit-for-bit like an
// uncrashed one over the same acked prefix. A directory written by a
// different floor plan, deployment, or seed refuses to load with a
// *wal.MismatchError.
func Open(plan *floorplan.Plan, dep *rfid.Deployment, cfg Config) (*System, error) {
	s, err := New(plan, dep, cfg)
	if err != nil {
		return nil, err
	}
	d := cfg.Durability
	if !d.Enabled() {
		return s, nil
	}
	sid, err := cfg.StreamID(plan, dep)
	if err != nil {
		return nil, err
	}
	s.streamID = sid
	rec := RecoveryInfo{Enabled: true}

	snapSeq, payload, ok, skipped, err := wal.ReadLatestSnapshotFS(d.fsys(), d.Dir, sid)
	if err != nil {
		return nil, err
	}
	rec.SnapshotsSkipped = skipped
	var snap engineSnap
	if ok {
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
			return nil, fmt.Errorf("engine: decode snapshot: %w", err)
		}
		s.restoreSnap(&snap)
		rec.SnapshotRestored = true
		rec.SnapshotSeq = snapSeq
		s.walSeq = snapSeq
	}

	// Replay the log on top. Records at or below the snapshot are skipped;
	// above it the sequence must be gapless, or the directory lost acked
	// records some other way than a torn tail and must not pretend otherwise.
	var lastBatch *wal.Batch
	expected := snapSeq + 1
	l, report, err := wal.Open(d.Dir, wal.Options{StreamID: sid, SegmentBytes: d.SegmentBytes, FS: d.FS},
		func(seq uint64, payload []byte) error {
			if seq <= snapSeq {
				return nil
			}
			if seq != expected {
				return fmt.Errorf("engine: WAL gap: snapshot covers seq %d but next record is %d (want %d)",
					snapSeq, seq, expected)
			}
			b, err := wal.DecodeBatch(payload)
			if err != nil {
				return err
			}
			s.applySecond(b.Time, b.Readings)
			lastBatch = &b
			rec.RecordsReplayed++
			rec.ReadingsReplayed += len(b.Readings)
			expected++
			s.walSeq = seq
			return nil
		})
	if err != nil {
		return nil, err
	}
	rec.Corrupt = report.Corrupt
	rec.TruncatedBytes = report.TruncatedBytes
	rec.SegmentsRemoved = report.RemovedSegments
	rec.LastSeq = s.walSeq

	// Position the reorder buffer at the recovered stream point. The last
	// record's view wins over the snapshot's; restoring its exact watermark
	// (rather than re-deriving maxSeen-horizon) errs toward re-accepting a
	// retransmission of a flushed-but-unacked crash-window second instead of
	// refusing it as late.
	switch {
	case lastBatch != nil:
		s.reorder.Restore(lastBatch.Time, lastBatch.MaxSeen, lastBatch.Drops, lastBatch.Forced)
	case rec.SnapshotRestored && snap.ReorderStarted:
		s.reorder.Restore(snap.Watermark, snap.MaxSeen, snap.Drops, snap.Forced)
	}

	s.wal = l
	s.recovery = rec
	s.lastSync = time.Now()
	s.tel.walReplayed.Set(uint64(rec.RecordsReplayed))
	s.tel.walTruncatedBytes.Set(uint64(rec.TruncatedBytes))
	s.tel.walSnapshotsSkipped.Set(uint64(rec.SnapshotsSkipped))
	if rec.Corrupt {
		log.Printf("engine: repaired WAL tail in %s: %d bytes truncated, %d segments removed",
			d.Dir, rec.TruncatedBytes, rec.SegmentsRemoved)
	}
	// If the replay itself was long, snapshot now so the next recovery is
	// bounded again.
	if d.SnapshotEvery > 0 && rec.RecordsReplayed >= d.SnapshotEvery {
		s.writeSnapshot()
	}
	return s, nil
}

// appendWAL logs one flushed second. On failure the error is sticky:
// ingestion fail-stops rather than silently running memory-only.
func (s *System) appendWAL(t model.Time, raws []model.RawReading) {
	wm, _ := s.reorder.Watermark()
	ms, _ := s.reorder.MaxSeen()
	b := wal.Batch{
		Time:     t,
		MaxSeen:  ms,
		Forced:   s.reorder.ForcedFlushes(),
		Drops:    s.reorder.Drops(),
		Readings: raws,
	}
	// The incremental flush contract guarantees the watermark equals the
	// second being flushed here; if that ever breaks, the record would lie
	// about the recovery position, so refuse to write it.
	if wm != t {
		s.failWAL(fmt.Errorf("engine: flush watermark %d disagrees with flushed second %d", wm, t))
		return
	}
	s.walBuf = b.Encode(s.walBuf[:0])
	err := retryTransient(s.cfg.Durability.Retry, s.tel, s.curTrace, s.shardID,
		s.streamID^s.walSeq, s.wal.ResetTail, func() error {
			return s.wal.Append(s.walSeq+1, s.walBuf)
		})
	if err != nil {
		s.failWAL(err)
		return
	}
	s.walSeq++
	s.sinceSnap++
	s.tel.walRecords.Inc()
}

// syncWAL applies the fsync policy after an ingest step; force bypasses the
// interval pacing (flushes, shutdown). The returned error is also sticky.
func (s *System) syncWAL(force bool) error {
	if s.wal == nil || s.walErr != nil {
		return s.walErr
	}
	switch s.cfg.Durability.Fsync {
	case wal.SyncOff:
		if !force {
			return nil
		}
	case wal.SyncInterval:
		if !force && time.Since(s.lastSync) < s.cfg.Durability.fsyncInterval() {
			return nil
		}
	}
	fstart := time.Now()
	err := retryTransient(s.cfg.Durability.Retry, s.tel, s.curTrace, s.shardID,
		s.streamID^s.walSeq, nil, s.wal.Sync)
	if err != nil {
		s.failWAL(err)
		return s.walErr
	}
	s.shardTel.walFsync.Observe(time.Since(fstart).Seconds())
	s.curTrace.Since("wal-fsync", s.shardID, fstart)
	s.lastSync = time.Now()
	s.tel.walSyncs.Inc()
	return nil
}

func (s *System) failWAL(err error) {
	if s.walErr == nil {
		s.walErr = fmt.Errorf("engine: WAL failed, ingestion stopped: %w", err)
		s.tel.walErrors.Inc()
		log.Printf("%v", s.walErr)
	}
}

// maybeSnapshot writes a snapshot when enough seconds accumulated since the
// last one.
func (s *System) maybeSnapshot() {
	if s.wal == nil || s.walErr != nil {
		return
	}
	if n := s.cfg.Durability.SnapshotEvery; n > 0 && s.sinceSnap >= n {
		s.writeSnapshot()
	}
}

// writeSnapshot captures the engine state covering every record up to
// walSeq, then prunes snapshots and the segments only they needed. Failures
// are logged and counted but not sticky: the WAL still has everything, so
// recovery just replays more.
func (s *System) writeSnapshot() {
	hits, misses := s.cache.Stats()
	wm, started := s.reorder.Watermark()
	ms, _ := s.reorder.MaxSeen()
	snap := engineSnap{
		Stats:          s.stats,
		Collector:      s.col.Snapshot(),
		CacheEntries:   s.cache.Dump(),
		CacheHits:      hits,
		CacheMisses:    misses,
		Events:         s.eventLog,
		EventOff:       s.eventOff,
		ReorderStarted: started,
		Watermark:      wm,
		MaxSeen:        ms,
		Drops:          s.reorder.Drops(),
		Forced:         s.reorder.ForcedFlushes(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		s.snapFailed(fmt.Errorf("engine: encode snapshot: %w", err))
		return
	}
	// An unsynced tail record would let a surviving snapshot claim coverage
	// of a second the log lost; sync first so the claim is always true.
	if err := s.syncWAL(true); err != nil {
		return
	}
	d := s.cfg.Durability
	_, err := wal.WriteSnapshotFS(d.fsys(), d.Dir, s.streamID, s.walSeq, buf.Bytes())
	if err != nil {
		s.snapFailed(fmt.Errorf("engine: write snapshot: %w", err))
		return
	}
	s.sinceSnap = 0
	s.snapFails = 0
	s.tel.walSnapshots.Inc()
	oldest, _, err := wal.PruneSnapshotsFS(d.fsys(), d.Dir, d.keepSnapshots())
	if err != nil {
		log.Printf("engine: prune snapshots: %v", err)
		return
	}
	if _, err := s.wal.PruneSegments(oldest); err != nil {
		log.Printf("engine: prune segments: %v", err)
	}
}

// snapFailed counts one failed snapshot attempt and paces retries: the next
// few flushed seconds retry immediately (sinceSnap stays over the threshold),
// then the schedule backs off a full SnapshotEvery window so a persistently
// broken snapshot store doesn't turn every flush into a doomed write. The WAL
// still has everything, so nothing is sticky — recovery just replays more.
func (s *System) snapFailed(err error) {
	s.tel.walSnapshotErrors.Inc()
	s.tel.snapshotFailures.Inc()
	s.snapFails++
	if s.snapFails >= snapFailBackoff {
		s.sinceSnap = 0
		s.snapFails = 0
	}
	log.Printf("%v", err)
}

// restoreSnap replaces the engine's mutable state with the snapshot's.
func (s *System) restoreSnap(snap *engineSnap) {
	s.stats = snap.Stats
	s.col.Restore(snap.Collector)
	s.cache.RestoreEntries(snap.CacheEntries)
	s.cache.RestoreStats(snap.CacheHits, snap.CacheMisses)
	s.eventLog = snap.Events
	s.eventOff = snap.EventOff
}

// Close shuts the durability layer down cleanly: buffered seconds are
// flushed (and logged), a final snapshot written, and the WAL fsynced and
// closed. Close is a no-op for systems built with New. The System must not
// be used after Close.
func (s *System) Close() error {
	if s.wal == nil {
		return nil
	}
	s.reorder.FlushAll()
	if s.walErr == nil {
		s.writeSnapshot()
	}
	syncErr := s.syncWAL(true)
	closeErr := s.wal.Close()
	s.wal = nil
	if s.walErr != nil && syncErr == nil {
		syncErr = s.walErr
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
