package engine

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/sim"
)

// testSystem spins up the default office with a small simulated population
// and warms it up for warmup seconds.
func testSystem(t *testing.T, objects, warmup int, seed int64) (*System, *sim.Simulator) {
	t.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := DefaultConfig()
	cfg.Seed = seed
	sys := MustNew(plan, dep, cfg)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = objects
	tc.DwellMin, tc.DwellMax = 2, 10
	simulator := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, seed+1000)
	for i := 0; i < warmup; i++ {
		tm, raws := simulator.Step()
		sys.Ingest(tm, raws)
	}
	return sys, simulator
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.AnchorSpacing = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero anchor spacing accepted")
	}
	bad = DefaultConfig()
	bad.MaxSpeed = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero max speed accepted")
	}
	bad = DefaultConfig()
	bad.SMTrials = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero SM trials accepted")
	}
	bad = DefaultConfig()
	bad.Particle.Ns = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad particle config accepted")
	}
}

func TestPreprocessProducesNormalizedDistributions(t *testing.T) {
	sys, _ := testSystem(t, 20, 120, 1)
	objs := sys.Collector().KnownObjects()
	if len(objs) == 0 {
		t.Fatal("no objects detected in 120 s")
	}
	tab := sys.Preprocess(objs)
	for _, obj := range objs {
		if !tab.HasObject(obj) {
			continue // never filtered (no readings retained)
		}
		total := tab.TotalProbOf(obj)
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("object %d distribution sums to %v", obj, total)
		}
	}
}

func TestRangeQueryResultsAreProbabilities(t *testing.T) {
	sys, _ := testSystem(t, 20, 120, 2)
	rs := sys.RangeQuery(geom.RectWH(20, 9, 20, 8))
	for obj, p := range rs {
		if p < -1e-9 || p > 1+1e-9 {
			t.Errorf("P(o%d) = %v out of [0,1]", obj, p)
		}
	}
}

func TestWholeFloorRangeQueryCoversDetectedMass(t *testing.T) {
	sys, _ := testSystem(t, 15, 150, 3)
	// Querying the whole floor must return each filtered object with
	// probability ~1.
	whole := sys.Graph().Plan().Bounds()
	rs := sys.RangeQuery(whole)
	for obj, p := range rs {
		if p < 0.98 {
			t.Errorf("P(o%d in whole floor) = %v, want ~1", obj, p)
		}
	}
	if len(rs) == 0 {
		t.Error("no objects in whole-floor query")
	}
}

func TestKNNQueryReturnsEnoughMass(t *testing.T) {
	sys, _ := testSystem(t, 25, 150, 4)
	rs := sys.KNNQuery(geom.Pt(35, 12), 3)
	if rs.TotalProb() < 3-1e-9 {
		// Possible only if fewer than 3 objects have mass at all.
		if len(rs) >= 3 {
			t.Errorf("kNN mass = %v with %d objects", rs.TotalProb(), len(rs))
		}
	}
	if len(rs) < 3 {
		t.Logf("note: only %d objects returned (population sparse near query)", len(rs))
	}
}

func TestSMQueriesWork(t *testing.T) {
	sys, _ := testSystem(t, 20, 120, 5)
	rs := sys.SMRangeQuery(geom.RectWH(20, 9, 20, 8))
	for obj, p := range rs {
		if p < -1e-9 || p > 1+1e-9 {
			t.Errorf("SM P(o%d) = %v", obj, p)
		}
	}
	got := sys.SMKNNQuery(geom.Pt(35, 12), 3)
	if len(got) > 0 && len(got) < 3 {
		t.Logf("SM kNN returned %d objects", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Error("SM kNN set not sorted ascending")
		}
	}
}

func TestCacheSpeedsUpRepeatedQueries(t *testing.T) {
	sys, _ := testSystem(t, 15, 100, 6)
	w := geom.RectWH(10, 9, 30, 10)
	sys.RangeQuery(w)
	h0, _ := sys.CacheStats()
	sys.RangeQuery(w) // immediate re-query: cache should hit
	h1, _ := sys.CacheStats()
	if h1 <= h0 {
		t.Errorf("no cache hits on repeated query: %d -> %d", h0, h1)
	}
}

func TestCacheConsistentWithUncachedResults(t *testing.T) {
	// The cached path must produce statistically equivalent results: here we
	// check it still yields normalized distributions after several rounds.
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := DefaultConfig()
	cfg.UseCache = true
	sys := MustNew(plan, dep, cfg)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 10
	tc.DwellMin, tc.DwellMax = 2, 8
	simulator := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 99)
	for round := 0; round < 5; round++ {
		for i := 0; i < 30; i++ {
			tm, raws := simulator.Step()
			sys.Ingest(tm, raws)
		}
		tab := sys.Preprocess(sys.Collector().KnownObjects())
		for _, obj := range tab.Objects() {
			if total := tab.TotalProbOf(obj); math.Abs(total-1) > 1e-9 {
				t.Fatalf("round %d: object %d mass %v", round, obj, total)
			}
		}
	}
}

func TestPruningDoesNotChangeRangeAnswersMaterially(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)

	run := func(prune bool) model.ResultSet {
		cfg := DefaultConfig()
		cfg.UsePruning = prune
		cfg.UseCache = false
		cfg.Seed = 7
		sys := MustNew(plan, dep, cfg)
		tc := sim.DefaultTraceConfig()
		tc.NumObjects = 15
		tc.DwellMin, tc.DwellMax = 2, 8
		simulator := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 4243)
		for i := 0; i < 120; i++ {
			tm, raws := simulator.Step()
			sys.Ingest(tm, raws)
		}
		return sys.RangeQuery(geom.RectWH(5, 9, 15, 8))
	}
	with := run(true)
	without := run(false)
	// Pruning only removes objects that cannot be in the window, so every
	// object with noticeable probability in the unpruned answer must also
	// appear in the pruned one.
	for obj, p := range without {
		if p > 0.05 {
			if _, ok := with[obj]; !ok {
				t.Errorf("pruning dropped object %d with P=%v", obj, p)
			}
		}
	}
}

// TestPFBeatsSMOnKL is the headline claim of the paper (Figure 9): the
// particle filter-based method's range query answers should have materially
// lower KL divergence from the ground truth than the symbolic baseline's.
func TestPFBeatsSMOnKL(t *testing.T) {
	sys, simulator := testSystem(t, 30, 200, 8)
	var pfKL, smKL []float64
	src := geomRects()
	for _, w := range src {
		truth := make(model.ResultSet)
		for _, o := range simulator.TrueRange(w) {
			truth[o] = 1
		}
		if len(truth) == 0 {
			continue
		}
		pf := sys.RangeQuery(w)
		smv := sys.SMRangeQuery(w)
		pfKL = append(pfKL, metrics.KLDivergence(truth, pf, metrics.DefaultEpsilon))
		smKL = append(smKL, metrics.KLDivergence(truth, smv, metrics.DefaultEpsilon))
	}
	if len(pfKL) < 3 {
		t.Skip("too few non-empty windows")
	}
	mp, ms := metrics.Mean(pfKL), metrics.Mean(smKL)
	t.Logf("mean KL: PF=%v SM=%v over %d windows", mp, ms, len(pfKL))
	if mp >= ms {
		t.Errorf("PF KL %v not below SM KL %v", mp, ms)
	}
}

func geomRects() []geom.Rect {
	var out []geom.Rect
	for _, x := range []float64{5, 20, 35, 50} {
		for _, y := range []float64{8, 14, 22} {
			out = append(out, geom.RectWH(x, y, 10, 6))
		}
	}
	return out
}

func TestIngestInvalidatesCacheOnEnter(t *testing.T) {
	sys, _ := testSystem(t, 10, 80, 9)
	// Preprocess everything so the cache is populated.
	sys.Preprocess(sys.Collector().KnownObjects())
	hits0, _ := sys.CacheStats()
	_ = hits0
	// Continue the simulation; objects that changed device must not hit.
	// (Indirect check: the system keeps returning normalized distributions.)
	tab := sys.Preprocess(sys.Collector().KnownObjects())
	for _, obj := range tab.Objects() {
		if total := tab.TotalProbOf(obj); math.Abs(total-1) > 1e-9 {
			t.Errorf("object %d mass %v after cache round-trip", obj, total)
		}
	}
}
