package engine

import (
	"context"
	"errors"
	"time"

	"repro/internal/geom"
	"repro/internal/health"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/obs/trace"
	"repro/internal/query"
)

// This file is the engine's resilience surface: the reader-health monitor's
// coupling to the sensing model, the deadline-aware query entry points, and
// the degraded-mode particle budget (DESIGN.md §12).

// refreshHealth pushes the monitor's current unhealthy-reader set into the
// sensing-model consumers. Called only when the monitor reports a state
// change, so in a fully healthy deployment the filter and pruner keep their
// nil sets and the original code paths, bit for bit.
func (s *System) refreshHealth() {
	un := s.monitor.Unhealthy()
	s.filter.SetUnhealthy(un)
	s.pruner.SetUnhealthy(un)
	s.tel.healthTransitions.Inc()
}

// ReaderHealth returns the liveness snapshot of every reader, or nil when
// health monitoring is disabled. The slice is indexed by ReaderID.
func (s *System) ReaderHealth() []health.ReaderHealth {
	if s.monitor == nil {
		return nil
	}
	return s.monitor.Snapshot(s.col.Now())
}

// HealthMonitorEnabled reports whether the reader-health monitor is running.
func (s *System) HealthMonitorEnabled() bool { return s.monitor != nil }

// SetParticleBudget caps the per-object particle count of newly initialized
// filter states — the degraded-mode knob the server's overload controller
// turns (the documented Ns ablation axis). n <= 0 or n >= the configured Ns
// restores full fidelity. Callers must hold the same exclusion the query API
// requires.
func (s *System) SetParticleBudget(n int) {
	s.filter.SetParticleBudget(n)
	s.tel.particleBudget.Set(float64(s.filter.ParticleBudget()))
}

// ParticleBudget returns the effective per-object particle count for new
// filter states.
func (s *System) ParticleBudget() int { return s.filter.ParticleBudget() }

// NoteOversizedBody accounts one rejected ingest delivery whose HTTP body
// exceeded the configured cap. The loss never reaches the reorder buffer, so
// the HTTP layer reports it here to keep the drop accounting complete.
func (s *System) NoteOversizedBody() {
	s.extraDrops.OversizedBatches++
}

// RangeQueryContext answers a snapshot indoor range query under a
// per-request deadline, checked at pruning, per-object preprocessing, and
// evaluation loop boundaries. On expiry it returns what it has — a result
// over the objects preprocessed so far — together with a
// *query.DeadlineError naming the stage that ran out of budget. A nil error
// means the result is complete and identical to RangeQuery's.
func (s *System) RangeQueryContext(ctx context.Context, window geom.Rect) (model.ResultSet, error) {
	start := time.Now()
	tr := trace.From(ctx)
	now := s.col.Now()
	gstart := time.Now()
	infos := s.objectInfos()
	tr.Since("gather", trace.RouterShard, gstart)
	var cands []model.ObjectID
	var perr error
	pstart := time.Now()
	if s.cfg.UsePruning {
		// An expired prune fails open (all objects admitted); preprocessing
		// below will cut the work short instead.
		cands, perr = s.pruner.RangeCandidatesContext(ctx, infos, []geom.Rect{window}, now)
	} else {
		cands = infosToIDs(infos)
	}
	tr.Since("prune", trace.RouterShard, pstart)
	estart := time.Now()
	tab, terr := s.preprocessCtx(ctx, cands)
	s.shardTel.evaluate.Observe(time.Since(estart).Seconds())
	tr.Since("evaluate", s.shardID, estart)
	s.stats.RangeQueries++
	mstart := time.Now()
	rs, eerr := s.eval.RangeContext(ctx, tab, window)
	tr.Since("merge", trace.RouterShard, mstart)
	s.observeQuery("range", rangeDetail(window.Min.X, window.Min.Y,
		window.Max.X-window.Min.X, window.Max.Y-window.Min.Y), len(cands), start, tr)
	if err := firstDeadline(perr, terr, eerr); err != nil {
		s.tel.deadlineExceeded.Inc()
		tr.SetDeadline()
		return rs, err
	}
	return rs, nil
}

// KNNQueryContext answers a snapshot indoor kNN query under a per-request
// deadline; see RangeQueryContext for the partial-result contract.
func (s *System) KNNQueryContext(ctx context.Context, q geom.Point, k int) (model.ResultSet, error) {
	start := time.Now()
	tr := trace.From(ctx)
	now := s.col.Now()
	gstart := time.Now()
	infos := s.objectInfos()
	tr.Since("gather", trace.RouterShard, gstart)
	var cands []model.ObjectID
	var perr error
	pstart := time.Now()
	if s.cfg.UsePruning {
		cands, perr = s.pruner.KNNCandidatesContext(ctx, infos, q, k, now)
	} else {
		cands = infosToIDs(infos)
	}
	tr.Since("prune", trace.RouterShard, pstart)
	estart := time.Now()
	tab, terr := s.preprocessCtx(ctx, cands)
	s.shardTel.evaluate.Observe(time.Since(estart).Seconds())
	tr.Since("evaluate", s.shardID, estart)
	s.stats.KNNQueries++
	mstart := time.Now()
	rs, eerr := s.eval.KNNContext(ctx, tab, q, k)
	tr.Since("merge", trace.RouterShard, mstart)
	s.observeQuery("knn", knnDetail(q.X, q.Y, k), len(cands), start, tr)
	if err := firstDeadline(perr, terr, eerr); err != nil {
		s.tel.deadlineExceeded.Inc()
		tr.SetDeadline()
		return rs, err
	}
	return rs, nil
}

// firstDeadline returns the earliest-stage deadline error among errs (they
// arrive in pipeline order), or nil.
func firstDeadline(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DegradedShards reports the quarantined shards; the single engine has no
// shards to degrade, so the answer is always nil. It exists so the server
// can treat both engines uniformly.
func (s *System) DegradedShards() []int { return nil }

// IsDeadline reports whether err is a query deadline overrun and extracts
// the typed error.
func IsDeadline(err error) (*query.DeadlineError, bool) {
	var de *query.DeadlineError
	if errors.As(err, &de) {
		return de, true
	}
	return nil, false
}

// compile-time check that the transport-drop kind stays in the taxonomy.
var _ = ingest.KindOversized
