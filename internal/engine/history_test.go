package engine

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/rfid"
	"repro/internal/sim"
)

func historySystem(t *testing.T) (*System, *sim.Simulator) {
	t.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := DefaultConfig()
	cfg.KeepHistory = true
	cfg.Seed = 77
	sys := MustNew(plan, dep, cfg)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 15
	tc.DwellMin, tc.DwellMax = 2, 8
	simulator := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 4711)
	return sys, simulator
}

func TestHistoricalRangeQuery(t *testing.T) {
	sys, simulator := historySystem(t)
	// Record ground truth at t=150 while simulating to t=300.
	var truthAt150 []int
	for i := 0; i < 300; i++ {
		tm, raws := simulator.Step()
		sys.Ingest(tm, raws)
		if tm == 150 {
			for _, o := range simulator.TrueRange(sys.Graph().Plan().Bounds()) {
				truthAt150 = append(truthAt150, int(o))
			}
		}
	}
	// A whole-floor historical query at t=150 must return normalized
	// distributions for the objects known then.
	rs := sys.RangeQueryAt(sys.Graph().Plan().Bounds(), 150)
	if len(rs) == 0 {
		t.Fatal("historical whole-floor query empty")
	}
	for obj, p := range rs {
		if p < 0.97 || p > 1+1e-9 {
			t.Errorf("historical P(o%d) = %v", obj, p)
		}
	}
	_ = truthAt150
}

func TestHistoricalQueryUsesOnlyPastReadings(t *testing.T) {
	sys, simulator := historySystem(t)
	for i := 0; i < 300; i++ {
		tm, raws := simulator.Step()
		sys.Ingest(tm, raws)
	}
	// The historical answer at t=150 must differ from the live answer at
	// t=300 for at least some objects (people moved), demonstrating the
	// query really reconstructs the past.
	win := geom.RectWH(2, 11, 30, 14)
	past := sys.RangeQueryAt(win, 150)
	live := sys.RangeQuery(win)
	same := true
	for obj, p := range past {
		if math.Abs(live[obj]-p) > 0.05 {
			same = false
		}
	}
	for obj, p := range live {
		if math.Abs(past[obj]-p) > 0.05 {
			same = false
		}
	}
	if same && len(past) > 0 && len(live) > 0 {
		t.Error("historical and live answers identical; history appears ignored")
	}
}

func TestHistoricalKNNQuery(t *testing.T) {
	sys, simulator := historySystem(t)
	for i := 0; i < 200; i++ {
		tm, raws := simulator.Step()
		sys.Ingest(tm, raws)
	}
	rs := sys.KNNQueryAt(geom.Pt(35, 12), 3, 120)
	// The result must carry at least some probability mass (objects were
	// known by t=120).
	if rs.TotalProb() <= 0 {
		t.Fatalf("historical kNN mass = %v", rs.TotalProb())
	}
}

func TestHistoricalQueryWithoutHistoryIsLimited(t *testing.T) {
	// Without KeepHistory, a deep historical query falls back to whatever
	// the live retention still holds — it must not panic and may be empty.
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	sys := MustNew(plan, dep, DefaultConfig())
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 10
	simulator := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 1)
	for i := 0; i < 200; i++ {
		tm, raws := simulator.Step()
		sys.Ingest(tm, raws)
	}
	_ = sys.RangeQueryAt(geom.RectWH(2, 11, 30, 14), 50)
}
