package engine

import (
	"fmt"
	"log"
	"strconv"
	"sync"
	"time"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/particle"
)

// Telemetry is the engine's observability surface: one obs.Registry holding
// every metric of the system plus the bounded debug rings. The hot-path
// metrics (filter stages, cache events, particle steps) are recorded inline
// by the instrumented components; everything derived from engine state
// (ingest lag, pending depth, cumulative drop accounting) is a scrape-time
// mirror refreshed by SyncMetrics, so the authoritative counters in Stats
// and the exported ones can never drift apart.
type Telemetry struct {
	reg *obs.Registry

	// Trace retains the last runs of the particle filter with per-stage
	// timings (served at /debug/filtertrace).
	Trace *obs.Ring[obs.FilterTrace]
	// Slow retains the queries that crossed Config.SlowQueryThreshold
	// (served at /debug/slowqueries).
	Slow *obs.Ring[SlowQuery]

	// Inline-recorded metrics.
	stagePredict, stageReweight, stageResample, stageSnap *obs.Histogram
	particleSteps                                         *obs.Counter
	runsFull, runsResumed                                 *obs.Counter
	queryRange, queryKNN                                  *obs.Histogram
	slowQueries                                           *obs.Counter
	cacheHits, cacheMisses, cacheEvictions                *obs.Counter

	// Resilience metrics. deadlineExceeded and healthTransitions are
	// inline-recorded; particleBudget is set by SetParticleBudget; the
	// per-reader state/silence gauges are scrape-time mirrors.
	deadlineExceeded  *obs.Counter
	healthTransitions *obs.Counter
	particleBudget    *obs.Gauge
	readerState       *obs.GaugeVec
	readerSilence     *obs.GaugeVec
	readerLabels      []string

	// Scrape-time mirrors, refreshed by SyncMetrics.
	ingested         *obs.Counter
	dropped          map[ingest.Kind]*obs.Counter
	rejectedBatches  *obs.Counter
	oversizedBatches *obs.Counter
	gapSeconds       *obs.Counter
	pendingSeconds   *obs.Gauge
	pendingReadings  *obs.Gauge
	watermarkLag     *obs.Gauge
	streamNow        *obs.Gauge
	objectsKnown     *obs.Gauge
	cacheEntries     *obs.Gauge

	// Durability metrics. Records/syncs/snapshots are inline-recorded; the
	// recovery counters are set once by Open; lastSeq/segments are mirrors.
	walRecords          *obs.Counter
	walSyncs            *obs.Counter
	walErrors           *obs.Counter
	walSnapshots        *obs.Counter
	walSnapshotErrors   *obs.Counter
	walReplayed         *obs.Counter
	walTruncatedBytes   *obs.Counter
	walSnapshotsSkipped *obs.Counter
	walRetries          *obs.Counter
	snapshotFailures    *obs.Counter
	shardQuarantines    *obs.Counter
	shardHeals          *obs.Counter
	walLastSeq          *obs.Gauge
	walSegments         *obs.Gauge

	// Per-shard families (shard-labeled). Children are resolved once per
	// shard through shardMetrics and cached, so the hot paths record through
	// plain handles.
	shardStep        *obs.HistogramVec
	shardEvaluate    *obs.HistogramVec
	shardWALAppend   *obs.HistogramVec
	shardWALFsync    *obs.HistogramVec
	shardQueueDepth  *obs.GaugeVec
	shardQuarantined *obs.GaugeVec
	reorderLag       *obs.Histogram

	shardMu sync.Mutex
	shardM  []*shardMetrics
}

// shardMetrics are one shard's resolved per-shard metric handles.
type shardMetrics struct {
	step        *obs.Histogram
	evaluate    *obs.Histogram
	walAppend   *obs.Histogram
	walFsync    *obs.Histogram
	queueDepth  *obs.Gauge
	quarantined *obs.Gauge
}

// shardMetrics returns (creating on first use) the cached handles for shard
// i. The sharded router resolves every shard's handles at construction; a
// standalone System resolves shard 0.
func (t *Telemetry) shardMetrics(i int) *shardMetrics {
	t.shardMu.Lock()
	defer t.shardMu.Unlock()
	for len(t.shardM) <= i {
		label := strconv.Itoa(len(t.shardM))
		t.shardM = append(t.shardM, &shardMetrics{
			step:        t.shardStep.With(label),
			evaluate:    t.shardEvaluate.With(label),
			walAppend:   t.shardWALAppend.With(label),
			walFsync:    t.shardWALFsync.With(label),
			queueDepth:  t.shardQueueDepth.With(label),
			quarantined: t.shardQuarantined.With(label),
		})
	}
	return t.shardM[i]
}

// SlowQuery is one slow-query log record.
type SlowQuery struct {
	// Kind is "range" or "knn"; Detail renders the query parameters.
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
	// SimTime is the stream second the query ran against.
	SimTime int64 `json:"simTime"`
	// Candidates is the candidate-set size after pruning.
	Candidates int `json:"candidates"`
	// Micros is the query's wall time in microseconds.
	Micros int64 `json:"micros"`
	// TraceID links the entry to its request trace at /debug/traces (empty
	// when the query ran untraced).
	TraceID string `json:"traceId,omitempty"`
	// ShardMicros is the per-shard evaluate wall time in microseconds,
	// indexed by shard, taken from the trace's scatter spans. Present only
	// for traced queries.
	ShardMicros []int64 `json:"shardMicros,omitempty"`
}

// newTelemetry builds the registry and registers the full metric inventory
// (DESIGN.md §10 documents naming and semantics).
func newTelemetry(cfg Config) *Telemetry {
	r := obs.NewRegistry()
	stage := r.HistogramVec("repro_filter_stage_seconds",
		"Wall time of one particle-filter stage per Run/Advance call.", nil, "stage")
	runs := r.CounterVec("repro_filter_runs_total",
		"Particle-filter executions by mode: full runs vs cache-resumed advances.", "mode")
	queries := r.HistogramVec("repro_query_seconds",
		"End-to-end snapshot query latency (pruning + preprocessing + evaluation).", nil, "kind")
	cacheEvents := r.CounterVec("repro_cache_events_total",
		"Particle-state cache events.", "event")
	droppedVec := r.CounterVec("repro_ingest_readings_dropped_total",
		"Raw readings discarded on the ingestion path, by taxonomy kind.", "kind")
	dropped := make(map[ingest.Kind]*obs.Counter, len(ingest.ReadingKinds))
	for _, k := range ingest.ReadingKinds {
		dropped[k] = droppedVec.With(k.String())
	}
	t := &Telemetry{
		reg:           r,
		Trace:         obs.NewRing[obs.FilterTrace](cfg.TraceRing),
		Slow:          obs.NewRing[SlowQuery](0),
		stagePredict:  stage.With("predict"),
		stageReweight: stage.With("reweight"),
		stageResample: stage.With("resample"),
		stageSnap:     stage.With("snap"),
		particleSteps: r.Counter("repro_filter_particle_steps_total",
			"Particle × second motion steps executed by the filter."),
		runsFull:    runs.With("full"),
		runsResumed: runs.With("resumed"),
		queryRange:  queries.With("range"),
		queryKNN:    queries.With("knn"),
		slowQueries: r.Counter("repro_slow_queries_total",
			"Queries slower than the configured slow-query threshold."),
		cacheHits:      cacheEvents.With("hit"),
		cacheMisses:    cacheEvents.With("miss"),
		cacheEvictions: cacheEvents.With("eviction"),
		ingested: r.Counter("repro_ingest_readings_ingested_total",
			"Raw readings accepted by the collector."),
		dropped: dropped,
		rejectedBatches: r.Counter("repro_ingest_batches_rejected_total",
			"Whole deliveries refused as late (the HTTP 409 path)."),
		oversizedBatches: r.Counter("repro_ingest_batches_oversized_total",
			"Whole deliveries refused undecoded for exceeding the body cap (the HTTP 413 path)."),
		deadlineExceeded: r.Counter("repro_query_deadline_exceeded_total",
			"Queries that ran out of their per-request deadline and returned a partial result."),
		healthTransitions: r.Counter("repro_reader_health_transitions_total",
			"Unhealthy-set refreshes pushed from the reader-health monitor into the sensing model."),
		particleBudget: r.Gauge("repro_particle_budget",
			"Effective per-object particle count for new filter states (reduced in degraded mode)."),
		readerState: r.GaugeVec("repro_reader_state",
			"Reader liveness state: 0 live, 1 suspect, 2 dead.", "reader"),
		readerSilence: r.GaugeVec("repro_reader_silence_seconds",
			"Stream seconds since the reader last produced any reading (-1: never read).", "reader"),
		gapSeconds: r.Counter("repro_ingest_gap_seconds_total",
			"Stream seconds the watermark passed with no delivery at all."),
		pendingSeconds: r.Gauge("repro_ingest_pending_seconds",
			"Seconds buffered in the reorder buffer, not yet flushed."),
		pendingReadings: r.Gauge("repro_ingest_pending_readings",
			"Raw readings buffered in the reorder buffer."),
		watermarkLag: r.Gauge("repro_ingest_watermark_lag_seconds",
			"Newest delivered batch second minus the newest closed second."),
		streamNow: r.Gauge("repro_stream_now_seconds",
			"The most recently ingested stream second (simulation clock)."),
		objectsKnown: r.Gauge("repro_objects_known",
			"Objects with retained collector state."),
		cacheEntries: r.Gauge("repro_cache_entries",
			"Particle states currently held by the cache."),
		walRecords: r.Counter("repro_wal_records_appended_total",
			"Acked seconds appended to the write-ahead log."),
		walSyncs: r.Counter("repro_wal_syncs_total",
			"fsync calls issued on the write-ahead log."),
		walErrors: r.Counter("repro_wal_errors_total",
			"WAL append/sync failures (the sticky fail-stop path)."),
		walSnapshots: r.Counter("repro_wal_snapshots_written_total",
			"Engine snapshots committed to the data directory."),
		walSnapshotErrors: r.Counter("repro_wal_snapshot_errors_total",
			"Snapshot encode/write failures (non-fatal; the WAL still covers the state)."),
		walRetries: r.Counter("repro_wal_retries_total",
			"WAL append/fsync attempts retried after a transient error."),
		snapshotFailures: r.Counter("repro_snapshot_failures_total",
			"Snapshot write attempts that failed; the schedule retries on the next flushed second."),
		shardQuarantines: r.Counter("repro_shard_quarantines_total",
			"Shards fail-stopped and quarantined after an unrecoverable WAL error."),
		shardHeals: r.Counter("repro_shard_heals_total",
			"Quarantined shards recovered and resumed by the self-heal loop."),
		walReplayed: r.Counter("repro_wal_records_replayed_total",
			"WAL records applied during the last recovery."),
		walTruncatedBytes: r.Counter("repro_wal_truncated_bytes_total",
			"Bytes cut from a torn or corrupt WAL tail during the last recovery."),
		walSnapshotsSkipped: r.Counter("repro_wal_snapshots_skipped_total",
			"Corrupt snapshots passed over during the last recovery."),
		walLastSeq: r.Gauge("repro_wal_last_seq",
			"Last WAL sequence number appended or recovered."),
		walSegments: r.Gauge("repro_wal_segments",
			"Live WAL segment files."),
		shardStep: r.HistogramVec("repro_shard_step_seconds",
			"Wall time one shard spent applying a flushed ingest second.", nil, "shard"),
		shardEvaluate: r.HistogramVec("repro_shard_evaluate_seconds",
			"Wall time one shard spent preprocessing its partition of a query's candidates.", nil, "shard"),
		shardWALAppend: r.HistogramVec("repro_shard_wal_append_seconds",
			"Wall time of one WAL record append, per shard log.", nil, "shard"),
		shardWALFsync: r.HistogramVec("repro_shard_wal_fsync_seconds",
			"Wall time of one WAL fsync, per shard log (stalls show as tail mass).", nil, "shard"),
		shardQueueDepth: r.GaugeVec("repro_shard_queue_depth",
			"Raw readings routed to the shard in the most recently flushed second.", "shard"),
		shardQuarantined: r.GaugeVec("repro_shard_quarantined",
			"1 while the shard is quarantined (or healing) after a WAL fail-stop, else 0.", "shard"),
		reorderLag: r.Histogram("repro_ingest_reorder_lag_seconds",
			"Stream seconds the flushed second trailed the newest delivered one (router-owned reorder buffer, so no shard label).",
			[]float64{0, 1, 2, 3, 5, 8, 13, 21}),
	}
	t.particleBudget.Set(float64(cfg.Particle.Ns))
	return t
}

// Registry returns the registry for exposition and for other layers (the
// HTTP server) to register their own metrics into.
func (t *Telemetry) Registry() *obs.Registry { return t.reg }

// filterMetrics returns the sinks the particle filter records into.
func (t *Telemetry) filterMetrics() particle.Metrics {
	return particle.Metrics{
		Predict:       t.stagePredict,
		Reweight:      t.stageReweight,
		Resample:      t.stageResample,
		ParticleSteps: t.particleSteps,
	}
}

// Telemetry returns the system's observability surface.
func (s *System) Telemetry() *Telemetry { return s.tel }

// SyncMetrics refreshes the scrape-time mirrors (ingest accounting, lag,
// pending depth, population and cache sizes) from the authoritative engine
// state. Callers must hold the same exclusion the query API requires; the
// /metrics handler calls it under the server lock and renders after
// releasing it.
func (s *System) SyncMetrics() {
	st := s.Stats()
	t := s.tel
	t.ingested.Set(uint64(st.ReadingsIngested))
	for kind, c := range t.dropped {
		c.Set(uint64(st.Ingest.Of(kind)))
	}
	t.rejectedBatches.Set(uint64(st.Ingest.LateBatches))
	t.oversizedBatches.Set(uint64(st.Ingest.OversizedBatches))
	t.gapSeconds.Set(uint64(st.Ingest.GapSeconds))
	t.pendingSeconds.Set(float64(s.reorder.PendingSeconds()))
	t.pendingReadings.Set(float64(st.ReadingsPending))
	t.watermarkLag.Set(float64(s.reorder.Lag()))
	t.streamNow.Set(float64(s.col.Now()))
	t.objectsKnown.Set(float64(s.col.NumObjects()))
	t.cacheEntries.Set(float64(s.cache.Len()))
	if s.wal != nil {
		t.walLastSeq.Set(float64(s.walSeq))
		t.walSegments.Set(float64(s.wal.Segments()))
	}
	if s.monitor != nil {
		if t.readerLabels == nil {
			t.readerLabels = make([]string, s.dep.NumReaders())
			for i := range t.readerLabels {
				t.readerLabels[i] = strconv.Itoa(i)
			}
		}
		for _, rh := range s.monitor.Snapshot(s.col.Now()) {
			label := t.readerLabels[rh.Reader]
			t.readerState.With(label).Set(float64(rh.State))
			t.readerSilence.With(label).Set(float64(rh.SilenceSeconds))
		}
	}
}

// recordTrace appends one filter run to the trace ring, combining the
// filter's own stage breakdown with the engine-side snap timing.
func (t *Telemetry) recordTrace(shard int, st *particle.State, snap time.Duration, resumed bool) {
	rs := st.LastRun
	t.Trace.Add(obs.FilterTrace{
		Object:         int64(st.Object),
		Shard:          shard,
		SimFrom:        int64(rs.From),
		SimTo:          int64(rs.To),
		Steps:          rs.Steps,
		Detections:     rs.Detections,
		Resamples:      rs.Resamples,
		Particles:      len(st.Particles),
		ESS:            rs.ESS,
		Resumed:        resumed,
		PredictMicros:  rs.Predict.Microseconds(),
		ReweightMicros: rs.Reweight.Microseconds(),
		ResampleMicros: rs.Resample.Microseconds(),
		SnapMicros:     snap.Microseconds(),
	})
}

// observeQuery records one snapshot query: latency into the per-kind
// histogram and, past the slow threshold, a slow-query log entry. tr is the
// request trace (nil for untraced queries); a slow entry links back to it by
// ID and carries the per-shard evaluate timings from its scatter spans.
func (s *System) observeQuery(kind, detail string, candidates int, start time.Time, tr *trace.Context) {
	elapsed := time.Since(start)
	t := s.tel
	h := t.queryRange
	if kind == "knn" {
		h = t.queryKNN
	}
	h.Observe(elapsed.Seconds())
	if thr := s.cfg.SlowQueryThreshold; thr > 0 && elapsed >= thr {
		t.slowQueries.Inc()
		t.Slow.Add(SlowQuery{
			Kind:        kind,
			Detail:      detail,
			SimTime:     int64(s.col.Now()),
			Candidates:  candidates,
			Micros:      elapsed.Microseconds(),
			TraceID:     tr.IDString(),
			ShardMicros: tr.DurationsOf("evaluate", s.shardID+1),
		})
		log.Printf("engine: slow %s query (%s, %d candidates): %v", kind, detail, candidates, elapsed)
	}
}

func rangeDetail(x, y, w, h float64) string {
	return fmt.Sprintf("window=(%.1f,%.1f,%.1f,%.1f)", x, y, w, h)
}

func knnDetail(x, y float64, k int) string {
	return fmt.Sprintf("q=(%.1f,%.1f) k=%d", x, y, k)
}
