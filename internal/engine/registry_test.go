package engine

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

func TestRegistryRangeEvents(t *testing.T) {
	sys, world := testSystem(t, 15, 100, 61)
	reg := NewRegistry(sys)
	zone := geom.RectWH(2, 11, 30, 14)
	id := reg.RegisterRange(zone, 0.5)
	if reg.Len() != 1 {
		t.Fatalf("Len = %d", reg.Len())
	}

	sawEnter, sawLeave := false, false
	members := map[model.ObjectID]bool{}
	for round := 0; round < 12; round++ {
		for i := 0; i < 10; i++ {
			tm, raws := world.Step()
			sys.Ingest(tm, raws)
		}
		for _, ev := range reg.Evaluate() {
			if ev.Query != id {
				t.Errorf("event for unknown query %d", ev.Query)
			}
			switch ev.Kind {
			case Entered:
				if members[ev.Object] {
					t.Errorf("double enter for o%d", ev.Object)
				}
				members[ev.Object] = true
				sawEnter = true
			case Left:
				if !members[ev.Object] {
					t.Errorf("leave without enter for o%d", ev.Object)
				}
				delete(members, ev.Object)
				sawLeave = true
			}
		}
		// The registry's view matches the accumulated membership.
		res := reg.Result(id)
		if len(res) != len(members) {
			t.Fatalf("round %d: result %v vs accumulated %v", round, res, members)
		}
	}
	if !sawEnter || !sawLeave {
		t.Errorf("expected both enter and leave events over 120 s (enter=%v leave=%v)", sawEnter, sawLeave)
	}
}

func TestRegistryKNNEvents(t *testing.T) {
	sys, world := testSystem(t, 12, 100, 62)
	reg := NewRegistry(sys)
	id := reg.RegisterKNN(geom.Pt(35, 12), 3)
	changes := 0
	for round := 0; round < 10; round++ {
		for i := 0; i < 10; i++ {
			tm, raws := world.Step()
			sys.Ingest(tm, raws)
		}
		for _, ev := range reg.Evaluate() {
			if ev.Kind != Added && ev.Kind != Removed {
				t.Errorf("kNN query produced %v event", ev.Kind)
			}
			changes++
		}
		if got := len(reg.Result(id)); got > 3 {
			t.Fatalf("kNN result tracks %d > k objects", got)
		}
	}
	if changes == 0 {
		t.Error("no membership changes in 100 s of movement")
	}
}

func TestRegistryDeregister(t *testing.T) {
	sys, _ := testSystem(t, 5, 60, 63)
	reg := NewRegistry(sys)
	a := reg.RegisterRange(geom.RectWH(0, 0, 10, 10), 0.5)
	b := reg.RegisterKNN(geom.Pt(10, 12), 2)
	if reg.Len() != 2 {
		t.Fatalf("Len = %d", reg.Len())
	}
	if !reg.Deregister(a) || reg.Deregister(a) {
		t.Error("range deregistration wrong")
	}
	if !reg.Deregister(b) {
		t.Error("knn deregistration wrong")
	}
	if reg.Len() != 0 {
		t.Errorf("Len after deregister = %d", reg.Len())
	}
	if reg.Evaluate() != nil {
		t.Error("empty registry produced events")
	}
	if reg.Result(a) != nil {
		t.Error("deregistered query still has results")
	}
}

func TestEventKindStrings(t *testing.T) {
	for kind, want := range map[EventKind]string{
		Entered: "entered", Left: "left", Added: "added", Removed: "removed",
	} {
		if kind.String() != want {
			t.Errorf("%d.String() = %q", kind, kind.String())
		}
	}
	if EventKind(9).String() == "" {
		t.Error("unknown kind empty")
	}
	ev := QueryEvent{Query: 1, Kind: Entered, Object: 4, Time: 9}
	if ev.String() != "q1: o4 entered (t=9)" {
		t.Errorf("event string = %q", ev.String())
	}
}
