package engine

import (
	"testing"

	"repro/internal/floorplan"
	"repro/internal/rfid"
	"repro/internal/sim"
)

// TestExpireAgesOutDepartedObjects pairs churn with Expire: objects that
// left the building stop producing readings and are eventually dropped from
// the collector instead of lingering as stale candidates.
func TestExpireAgesOutDepartedObjects(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := DefaultConfig()
	cfg.Seed = 93
	sys := MustNew(plan, dep, cfg)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 15
	tc.DwellMin, tc.DwellMax = 1, 4
	tc.ChurnProb = 0.5
	tc.AwayMin, tc.AwayMax = 200, 400
	world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 777)

	for i := 0; i < 250; i++ {
		tm, raws := world.Step()
		sys.Ingest(tm, raws)
	}
	before := len(sys.Collector().KnownObjects())
	if before == 0 {
		t.Fatal("no objects known")
	}
	awayCount := 0
	for _, o := range world.Objects() {
		if world.Away(o) {
			awayCount++
		}
	}
	if awayCount == 0 {
		t.Skip("no object happened to be away at the checkpoint")
	}
	// Expire anything silent for over 120 s.
	sys.Expire(sys.Now() - 120)
	after := len(sys.Collector().KnownObjects())
	if after >= before {
		t.Errorf("expiry removed nothing: %d -> %d (away: %d)", before, after, awayCount)
	}
	// The system still answers queries cleanly afterwards.
	tab := sys.Preprocess(sys.Collector().KnownObjects())
	_ = sys.RangeQueryOn(tab, plan.Bounds())
}
