package engine

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"repro/internal/anchor"
	"repro/internal/floorplan"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/sim"
)

// delivery is one perturbed gateway delivery: the readings of batch second
// batch, arriving at stream position due.
type delivery struct {
	due   model.Time
	batch model.Time
	seq   int
	raws  []model.RawReading
}

func sameMultiset(a, b []model.RawReading) bool {
	if len(a) != len(b) {
		return false
	}
	less := func(s []model.RawReading) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].Time != s[j].Time {
				return s[i].Time < s[j].Time
			}
			if s[i].Object != s[j].Object {
				return s[i].Object < s[j].Object
			}
			return s[i].Reader < s[j].Reader
		}
	}
	as := append([]model.RawReading(nil), a...)
	bs := append([]model.RawReading(nil), b...)
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestReorderedIngestBitForBitIdentical is the hardening property test:
// delaying, splitting, and retransmitting the delivery stream — while the
// reorder buffer absorbs it all within its horizon — must leave the filter
// output bit-for-bit identical to in-order delivery, with every discarded
// reading accounted for.
func TestReorderedIngestBitForBitIdentical(t *testing.T) {
	const (
		seconds = 150
		horizon = model.Time(6)
	)
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfgA := DefaultConfig()
	cfgA.Seed = 7
	cfgB := cfgA
	cfgB.Ingest = ingest.Config{Horizon: horizon}
	sysA := MustNew(plan, dep, cfgA)
	sysB := MustNew(plan, dep, cfgB)

	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 25
	tc.DwellMin, tc.DwellMax = 2, 10
	simulator := sim.MustNew(sysA.Graph(), rfid.NewSensor(dep), tc, 4711)

	// One shared true stream. System A gets it in order; system B gets a
	// perturbed delivery schedule built from the same data.
	type second struct {
		t    model.Time
		raws []model.RawReading
	}
	var stream []second
	for i := 0; i < seconds; i++ {
		tm, raws := simulator.Step()
		stream = append(stream, second{tm, raws})
		if err := sysA.Ingest(tm, raws); err != nil {
			t.Fatalf("in-order ingest t=%d: %v", tm, err)
		}
	}

	// Perturb: every batch is delayed by 0..horizon seconds; ~30% are split
	// into two distinct sub-deliveries with independent delays; ~20% of the
	// unsplit ones are retransmitted within the horizon. Every original
	// second is still offered (possibly empty), so no gaps arise.
	prng := rng.New(99)
	var dels []delivery
	seq := 0
	add := func(due, batch model.Time, raws []model.RawReading) {
		dels = append(dels, delivery{due: due, batch: batch, seq: seq, raws: raws})
		seq++
	}
	delay := func() model.Time { return model.Time(prng.Intn(int(horizon) + 1)) }
	offered, dupReadings, delayed, splits, dups := 0, 0, 0, 0, 0
	for _, s := range stream {
		offered += len(s.raws)
		split := false
		if len(s.raws) >= 2 && prng.Bool(0.3) {
			k := 1 + prng.Intn(len(s.raws)-1)
			h1, h2 := s.raws[:k], s.raws[k:]
			// Identical halves would be deduplicated as a retransmission;
			// only genuinely distinct sub-deliveries model a split.
			if !sameMultiset(h1, h2) {
				split = true
				splits++
				add(s.t+delay(), s.t, h1)
				add(s.t+delay(), s.t, h2)
			}
		}
		if !split {
			add(s.t+delay(), s.t, s.raws)
			if len(s.raws) > 0 && prng.Bool(0.2) {
				// Retransmission of the whole delivery, still within the
				// horizon so it meets the pending copy and is deduplicated.
				add(s.t+delay(), s.t, s.raws)
				dupReadings += len(s.raws)
				offered += len(s.raws)
				dups++
			}
		}
	}
	// Deliver in arrival order: by due second, then ascending batch second
	// (a gateway flushes its oldest buffered batch first), then emission.
	sort.Slice(dels, func(i, j int) bool {
		if dels[i].due != dels[j].due {
			return dels[i].due < dels[j].due
		}
		if dels[i].batch != dels[j].batch {
			return dels[i].batch < dels[j].batch
		}
		return dels[i].seq < dels[j].seq
	})
	for i := 1; i < len(dels); i++ {
		if dels[i].batch < dels[i-1].batch {
			delayed++
		}
	}
	if splits == 0 || dups == 0 || delayed == 0 {
		t.Fatalf("degenerate perturbation: %d splits, %d duplicates, %d inversions", splits, dups, delayed)
	}

	for _, d := range dels {
		err := sysB.Ingest(d.batch, d.raws)
		if err == nil {
			continue
		}
		var ie *ingest.Error
		if !errors.As(err, &ie) || ie.Kind != ingest.KindDuplicate {
			t.Fatalf("perturbed ingest batch=%d due=%d: unexpected %v", d.batch, d.due, err)
		}
	}
	sysB.FlushIngest()

	// Accounting: the clean path dropped nothing; the perturbed path dropped
	// exactly the retransmitted readings, nothing silently.
	stA, stB := sysA.Stats(), sysB.Stats()
	if stA.ReadingsDropped != 0 || stA.Ingest.GapSeconds != 0 {
		t.Errorf("in-order path recorded drops: %+v", stA.Ingest)
	}
	if stB.Ingest.DuplicateReadings != dupReadings {
		t.Errorf("duplicate readings = %d, want %d", stB.Ingest.DuplicateReadings, dupReadings)
	}
	if stB.Ingest.LateReadings != 0 || stB.Ingest.MisstampedReadings != 0 ||
		stB.Ingest.InvalidReadings != 0 || stB.Ingest.GapSeconds != 0 {
		t.Errorf("unexpected drops on perturbed path: %+v", stB.Ingest)
	}
	if stB.ReadingsPending != 0 {
		t.Errorf("%d readings still pending after FlushIngest", stB.ReadingsPending)
	}
	if loss := metrics.SilentLoss(offered, stB.ReadingsIngested, stB.ReadingsDropped, stB.ReadingsPending); loss != 0 {
		t.Errorf("silent loss = %d (offered %d, ingested %d, dropped %d)",
			loss, offered, stB.ReadingsIngested, stB.ReadingsDropped)
	}
	if stA.ReadingsIngested != stB.ReadingsIngested {
		t.Errorf("ingested diverged: in-order %d, reordered %d", stA.ReadingsIngested, stB.ReadingsIngested)
	}

	// The filter output must be bit-for-bit identical.
	objsA := sysA.Collector().KnownObjects()
	objsB := sysB.Collector().KnownObjects()
	if len(objsA) == 0 {
		t.Fatal("no objects detected")
	}
	if fmt.Sprint(objsA) != fmt.Sprint(objsB) {
		t.Fatalf("known objects diverged: %v vs %v", objsA, objsB)
	}
	tabA := sysA.Preprocess(objsA)
	tabB := sysB.Preprocess(objsB)
	for _, obj := range objsA {
		da, db := tabA.DistributionOf(obj), tabB.DistributionOf(obj)
		if diff := diffDistributions(da, db); diff != "" {
			t.Errorf("object %d distributions diverged: %s", obj, diff)
		}
	}
}

// diffDistributions compares two anchor distributions exactly (bit for bit)
// and describes the first difference, or returns "".
func diffDistributions(a, b map[anchor.ID]float64) string {
	keys := make(map[anchor.ID]struct{}, len(a)+len(b))
	for k := range a {
		keys[k] = struct{}{}
	}
	for k := range b {
		keys[k] = struct{}{}
	}
	ids := make([]anchor.ID, 0, len(keys))
	for k := range keys {
		ids = append(ids, k)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		va, oka := a[id]
		vb, okb := b[id]
		if oka != okb || fmt.Sprintf("%x", va) != fmt.Sprintf("%x", vb) {
			return fmt.Sprintf("anchor %d: %x (%v) vs %x (%v)", id, va, oka, vb, okb)
		}
	}
	return ""
}

// TestIngestDropAccounting walks the engine through each drop kind and
// checks the typed errors and Stats counters line up.
func TestIngestDropAccounting(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	sys := MustNew(plan, dep, DefaultConfig())
	rd := func(obj int, tm model.Time) model.RawReading {
		return model.RawReading{Object: model.ObjectID(obj), Reader: 0, Time: tm}
	}

	if err := sys.Ingest(10, []model.RawReading{rd(1, 10)}); err != nil {
		t.Fatalf("clean ingest: %v", err)
	}
	// Late batch: refused whole.
	err := sys.Ingest(9, []model.RawReading{rd(1, 9)})
	var ie *ingest.Error
	if !errors.As(err, &ie) || ie.Kind != ingest.KindLate || !ie.Rejected {
		t.Fatalf("late batch error = %v", err)
	}
	// Mis-stamped reading far beyond the skew tolerance.
	err = sys.Ingest(11, []model.RawReading{rd(1, 11), rd(2, 11+ingest.DefaultMaxSkew+1)})
	if !errors.As(err, &ie) || ie.Kind != ingest.KindMisstamped || ie.Rejected {
		t.Fatalf("misstamped error = %v", err)
	}
	// Reading with no reader attached.
	err = sys.Ingest(12, []model.RawReading{{Object: 3, Reader: model.NoReader, Time: 12}})
	if !errors.As(err, &ie) || ie.Kind != ingest.KindInvalid {
		t.Fatalf("invalid error = %v", err)
	}
	// A hole in the stream becomes counted gap seconds.
	if err := sys.Ingest(20, []model.RawReading{rd(1, 20)}); err != nil {
		t.Fatalf("post-gap ingest: %v", err)
	}

	st := sys.Stats()
	if st.Ingest.LateBatches != 1 || st.Ingest.LateReadings != 1 {
		t.Errorf("late accounting: %+v", st.Ingest)
	}
	if st.Ingest.MisstampedReadings != 1 || st.Ingest.InvalidReadings != 1 {
		t.Errorf("misstamped/invalid accounting: %+v", st.Ingest)
	}
	if st.Ingest.GapSeconds != 7 { // seconds 13..19
		t.Errorf("gap seconds = %d, want 7", st.Ingest.GapSeconds)
	}
	if st.ReadingsDropped != 3 {
		t.Errorf("ReadingsDropped = %d, want 3", st.ReadingsDropped)
	}
	if st.ReadingsIngested != 3 { // seconds 10, 11, 20
		t.Errorf("ReadingsIngested = %d, want 3", st.ReadingsIngested)
	}
}
