package engine

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/collector"
	"repro/internal/floorplan"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/wal"
)

// Sharded durability: one WAL stream per shard plus a router snapshot
// stream, all sharing the single engine's stream identity.
//
// Layout under Durability.Dir:
//
//	SHARDS            guard file: the shard count the directory was written with
//	snap-*.snap       router snapshots (merged event log, reorder position, query counters)
//	quarantine-NNNN   marker: shard NNNN was quarantined at the recorded seq
//	shard-0000/       shard 0's WAL segments and snapshots
//	shard-0001/       ...
//
// Every flushed second appends one record to EVERY live shard's log at the
// same sequence number — empty subsets included — carrying the router's
// reorder metadata redundantly. Lockstep sequences make recovery simple and
// exact: the highest snapshot sequence readable in the router AND every
// (non-quarantined) shard is restored, then the shard logs are replayed
// second by second through the same applyParts path live ingestion uses. A
// crash between the per-shard appends of one second leaves a ragged tail;
// recovery replays to the shortest live log's last sequence and truncates
// the shards that got further (wal.TruncateTo), which is exactly the
// all-or-nothing cut the single engine's torn-tail repair makes.
//
// A quarantine marker changes the reading of a short log: the marked shard
// is legitimately behind (its log was cut when the shard fail-stopped), so
// its length is excluded from the lockstep cut — without the marker, one
// quarantined shard would truncate every healthy shard back to its seq and
// lose acked data. Marked shards are restored from their own snapshots, ride
// the lockstep replay for the seconds their log covers, and come back
// quarantined with the self-heal loop scheduled (sharded_heal.go).

// shardGuardFile names the file pinning the directory's shard count.
const shardGuardFile = "SHARDS"

func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d", i))
}

// checkShardGuard pins dir to one shard count. The shard map is a pure
// function of (object, count), so opening a directory with a different
// count would scatter recovered objects across the wrong shards.
func checkShardGuard(fsys wal.FS, dir string, n int) error {
	path := filepath.Join(dir, shardGuardFile)
	data, err := wal.ReadFileFS(fsys, path)
	if errors.Is(err, os.ErrNotExist) {
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("engine: create data dir: %w", err)
		}
		if err := wal.WriteFileFS(fsys, path, []byte(strconv.Itoa(n)+"\n"), 0o644); err != nil {
			return fmt.Errorf("engine: write shard guard: %w", err)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("engine: read shard guard: %w", err)
	}
	have, perr := strconv.Atoi(strings.TrimSpace(string(data)))
	if perr != nil {
		return fmt.Errorf("engine: unreadable shard guard %s: %q", path, strings.TrimSpace(string(data)))
	}
	if have != n {
		return fmt.Errorf("engine: data directory %s was written with %d shards, refusing to open with %d (the shard map would misroute recovered objects)", dir, have, n)
	}
	return nil
}

// quarRecord is a quarantined shard's entry in the router snapshot. It
// carries what the marker file cannot afford to: the full list of flushed
// seconds the shard has missed so far, so a crash during a quarantine that
// outlived a snapshot barrier still heals with exact fast-forward times.
type quarRecord struct {
	Shard          int
	Seq            uint64
	Missed         []model.Time
	SplicedThrough int
}

// routerSnap is the router's share of a sharded snapshot: everything the
// shards do not own. The per-shard shardSnap carries the rest.
type routerSnap struct {
	RangeQueries   int
	KNNQueries     int
	Events         []model.Event
	EventOff       int
	ReorderStarted bool
	Watermark      model.Time
	MaxSeen        model.Time
	Drops          ingest.Drops
	Forced         int
	// Quarantined lists the shards out of lockstep when the barrier was
	// written (absent in snapshots from engines that never quarantined).
	Quarantined []quarRecord
}

// shardSnap is one shard's share of a sharded snapshot.
type shardSnap struct {
	Stats        Stats
	Collector    collector.Snapshot
	CacheEntries []cache.Entry
	CacheHits    int
	CacheMisses  int
}

// Recovery returns what OpenSharded found in the data directory.
func (e *Sharded) Recovery() RecoveryInfo { return e.recovery }

// DurabilityEnabled reports whether this engine writes WALs.
func (e *Sharded) DurabilityEnabled() bool {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	return e.wals != nil
}

// WALError returns the sticky WAL failure, or nil while at least one shard
// log is healthy. Single-shard quarantines are NOT engine failures — see
// DegradedShards; walErr only becomes sticky when every shard is down.
func (e *Sharded) WALError() error {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	return e.walErr
}

// OpenSharded assembles a Sharded engine like NewSharded and, when
// durability is enabled, recovers it from the data directory. The recovered
// state is bit-for-bit identical to the single engine's recovery over the
// same acked prefix, at any shard count. Shards with a quarantine marker
// come back quarantined (their logs are exempt from the lockstep cut) and
// the self-heal loop is scheduled for them.
func OpenSharded(plan *floorplan.Plan, dep *rfid.Deployment, cfg Config) (*Sharded, error) {
	e, err := NewSharded(plan, dep, cfg)
	if err != nil {
		return nil, err
	}
	d := cfg.Durability
	if !d.Enabled() {
		return e, nil
	}
	sid, err := cfg.StreamID(plan, dep)
	if err != nil {
		return nil, err
	}
	e.streamID = sid
	fsys := d.fsys()
	if err := checkShardGuard(fsys, d.Dir, e.n); err != nil {
		return nil, err
	}
	markers, err := readQuarMarkers(fsys, d.Dir, e.n)
	if err != nil {
		return nil, err
	}
	rec := RecoveryInfo{Enabled: true}

	// Pick the restore point: the highest snapshot sequence readable in the
	// router directory AND every non-quarantined shard directory. A snapshot
	// barrier writes the router file plus one per live shard at one sequence;
	// a crash mid-barrier (or a corrupt file) drops that sequence out of the
	// intersection and recovery replays more WAL. Marked shards are exempt
	// from the intersection — unless the shard holds its own snapshot at a
	// barrier NEWER than its quarantine seq, which proves a heal completed
	// its rejoin barrier and only the marker removal was lost (stale marker:
	// the shard is treated as live). A stream-identity mismatch is fatal,
	// not skippable.
	routerSnaps, err := wal.ListSnapshotsFS(fsys, d.Dir)
	if err != nil {
		return nil, err
	}
	shardSnapLists := make([][]wal.SnapshotInfo, e.n)
	shardSnapsAt := make([]map[uint64]string, e.n)
	for i := range shardSnapsAt {
		infos, err := wal.ListSnapshotsFS(fsys, shardDir(d.Dir, i))
		if err != nil {
			return nil, err
		}
		shardSnapLists[i] = infos
		m := make(map[uint64]string, len(infos))
		for _, si := range infos {
			m[si.Seq] = si.Path
		}
		shardSnapsAt[i] = m
	}
	var (
		snapSeq uint64
		rsnap   routerSnap
		ssnaps  map[int]shardSnap
		stale   map[int]bool
	)
	for ri := len(routerSnaps) - 1; ri >= 0 && !rec.SnapshotRestored; ri-- {
		seq := routerSnaps[ri].Seq
		_, payload, rerr := wal.ReadSnapshotFileFS(fsys, routerSnaps[ri].Path, sid)
		if rerr != nil {
			var mm *wal.MismatchError
			if errors.As(rerr, &mm) {
				return nil, rerr
			}
			rec.SnapshotsSkipped++
			continue
		}
		var rs routerSnap
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rs); derr != nil {
			rec.SnapshotsSkipped++
			continue
		}
		candidates := make(map[int]shardSnap, e.n)
		staleHere := make(map[int]bool)
		complete := true
		for i := 0; i < e.n && complete; i++ {
			qi, marked := markers[i]
			if marked && seq <= qi {
				continue // barrier predates the quarantine; shard exempt here
			}
			path, ok := shardSnapsAt[i][seq]
			if !ok {
				if marked {
					continue // quarantined when this barrier was written
				}
				complete = false
				break
			}
			_, spayload, serr := wal.ReadSnapshotFileFS(fsys, path, sid)
			if serr != nil {
				var mm *wal.MismatchError
				if errors.As(serr, &mm) {
					return nil, serr
				}
				if marked {
					continue
				}
				complete = false
				break
			}
			var ss shardSnap
			if derr := gob.NewDecoder(bytes.NewReader(spayload)).Decode(&ss); derr != nil {
				if marked {
					continue
				}
				complete = false
				break
			}
			candidates[i] = ss
			if marked {
				staleHere[i] = true // own snapshot past the quarantine seq: heal finished
			}
		}
		if !complete {
			rec.SnapshotsSkipped++
			continue
		}
		snapSeq, rsnap, ssnaps, stale = seq, rs, candidates, staleHere
		rec.SnapshotRestored = true
		rec.SnapshotSeq = seq
	}
	for i := range stale {
		log.Printf("engine: shard %d: stale quarantine marker (heal completed at or before seq %d); treating as live", i, snapSeq)
		if err := removeQuarMarker(fsys, d.Dir, i); err != nil {
			log.Printf("engine: remove stale quarantine marker for shard %d: %v", i, err)
		}
		delete(markers, i)
	}
	if rec.SnapshotRestored {
		e.rangeQ.Store(int64(rsnap.RangeQueries))
		e.knnQ.Store(int64(rsnap.KNNQueries))
		e.eventLog = rsnap.Events
		e.eventOff = rsnap.EventOff
		for i, sh := range e.shards {
			ss, ok := ssnaps[i]
			if !ok {
				continue // marked shard: restored from its own base below
			}
			sh.stats = ss.Stats
			sh.col.Restore(ss.Collector)
			sh.cache.RestoreEntries(ss.CacheEntries)
			sh.cache.RestoreStats(ss.CacheHits, ss.CacheMisses)
		}
		e.walSeq = snapSeq
	}

	// Open every shard log, collecting decoded batches above each shard's
	// own base: the barrier seq for live shards, the shard's newest readable
	// snapshot at or below min(barrier, quarantine seq) for marked shards.
	// Above its base each log must be gapless. A marked shard whose log
	// cannot be opened stays quarantined (frozen empty in memory) instead of
	// failing the whole engine — its disk may still be broken, and healing
	// retries from disk anyway.
	closeAll := func() {
		for _, l := range e.wals {
			if l != nil {
				l.Close()
			}
		}
		e.wals = nil
	}
	e.wals = make([]*wal.Log, e.n)
	batches := make([][]wal.Batch, e.n)
	base := make([]uint64, e.n)
	qcause := make(map[int]error)
	for i := 0; i < e.n; i++ {
		base[i] = snapSeq
		qi, marked := markers[i]
		if marked {
			// Find the marked shard's own restore base and load it now; the
			// solo catch-up and lockstep participation below bring it to qi.
			limit := snapSeq
			if qi < limit {
				limit = qi
			}
			base[i] = 0
			found := false
			lists := shardSnapLists[i]
			for k := len(lists) - 1; k >= 0 && !found; k-- {
				if lists[k].Seq > limit {
					continue
				}
				_, spayload, serr := wal.ReadSnapshotFileFS(fsys, lists[k].Path, sid)
				if serr != nil {
					var mm *wal.MismatchError
					if errors.As(serr, &mm) {
						return nil, serr
					}
					continue
				}
				var ss shardSnap
				if derr := gob.NewDecoder(bytes.NewReader(spayload)).Decode(&ss); derr != nil {
					continue
				}
				sh := e.shards[i]
				sh.stats = ss.Stats
				sh.col.Restore(ss.Collector)
				sh.cache.RestoreEntries(ss.CacheEntries)
				sh.cache.RestoreStats(ss.CacheHits, ss.CacheMisses)
				base[i] = lists[k].Seq
				found = true
			}
		}
		shardBase := base[i]
		expected := shardBase + 1
		l, report, oerr := wal.Open(shardDir(d.Dir, i),
			wal.Options{StreamID: sid, SegmentBytes: d.SegmentBytes, FS: d.FS},
			func(seq uint64, payload []byte) error {
				if seq <= shardBase {
					return nil
				}
				if seq != expected {
					return fmt.Errorf("engine: shard %d WAL gap: restore base is seq %d but next record is %d (want %d)",
						i, shardBase, seq, expected)
				}
				b, derr := wal.DecodeBatch(payload)
				if derr != nil {
					return derr
				}
				batches[i] = append(batches[i], b)
				expected++
				return nil
			})
		if oerr != nil {
			if marked {
				log.Printf("engine: shard %d: cannot open quarantined log (%v); shard stays quarantined", i, oerr)
				qcause[i] = oerr
				batches[i] = nil
				continue
			}
			closeAll()
			return nil, oerr
		}
		if marked && l.LastSeq() > qi {
			// The log extends past the recorded quarantine point but no
			// rejoin barrier survived: the shard's base state for those
			// records is unrecoverable. Keep the shard quarantined and its
			// log untouched for inspection (walctl) rather than guessing.
			log.Printf("engine: shard %d: log ends at seq %d, past its quarantine seq %d, with no readable rejoin barrier; shard stays quarantined", i, l.LastSeq(), qi)
			qcause[i] = fmt.Errorf("engine: shard %d log past quarantine seq %d with no rejoin barrier", i, qi)
			batches[i] = nil
			l.Close()
			continue
		}
		e.wals[i] = l
		rec.Corrupt = rec.Corrupt || report.Corrupt
		rec.TruncatedBytes += report.TruncatedBytes
		rec.SegmentsRemoved += report.RemovedSegments
	}

	// The lockstep cut: live shards replay to the shortest LIVE log. Marked
	// shards are exempt — their effective quarantine seq is capped to both
	// their actual log end (an unsynced tail may have torn off) and the cut.
	liveMin := -1
	for i := 0; i < e.n; i++ {
		if _, marked := markers[i]; marked {
			continue
		}
		if liveMin < 0 || len(batches[i]) < liveMin {
			liveMin = len(batches[i])
		}
	}
	if liveMin < 0 {
		liveMin = 0 // every shard marked: nothing to replay in lockstep
	}
	walSeqFinal := snapSeq + uint64(liveMin)
	qeff := make(map[int]uint64)
	for i, qi := range markers {
		eff := qi
		if e.wals[i] != nil {
			if ls := e.wals[i].LastSeq(); ls < eff {
				eff = ls
			}
		} else {
			eff = base[i] // unopenable log: frozen at its restored base
		}
		if walSeqFinal < eff {
			eff = walSeqFinal
		}
		qeff[i] = eff
	}

	// Solo catch-up: marked shards replay their own records up to
	// min(barrier, qeff) alone. Events are discarded (the router snapshot's
	// event log already covers them) but the cache still invalidates on
	// ENTER, exactly like the live path.
	for i := range markers {
		limit := snapSeq
		if qeff[i] < limit {
			limit = qeff[i]
		}
		sh := e.shards[i]
		for k := range batches[i] {
			seq := base[i] + uint64(k) + 1
			if seq > limit {
				break
			}
			b := &batches[i][k]
			dropped := sh.col.Drops().Readings()
			sh.col.IngestSecond(b.Time, b.Readings)
			sh.stats.ReadingsIngested += len(b.Readings) - (sh.col.Drops().Readings() - dropped)
			for _, ev := range sh.col.DrainEvents() {
				if ev.Kind == model.Enter {
					sh.cache.Invalidate(ev.Object, ev.Reader)
				}
			}
			rec.ReadingsReplayed += len(b.Readings)
		}
	}

	// Lockstep replay: each sequence is one flushed second, applied through
	// the same path live ingestion uses. Marked shards participate for the
	// seconds their log covers (seq <= qeff); beyond that the second goes on
	// their missed list for healing to fast-forward.
	missed := make(map[int][]model.Time)
	var lastMeta *wal.Batch
	for k := 0; k < liveMin; k++ {
		seq := snapSeq + uint64(k) + 1
		parts := make([][]model.RawReading, e.n)
		active := make([]bool, e.n)
		var raws []model.RawReading
		var t model.Time
		var ref *wal.Batch
		for i := 0; i < e.n; i++ {
			if _, marked := markers[i]; marked {
				if seq > qeff[i] {
					continue
				}
				idx := int(seq - base[i] - 1)
				if idx < 0 || idx >= len(batches[i]) {
					continue
				}
				b := &batches[i][idx]
				if ref != nil && b.Time != ref.Time {
					closeAll()
					return nil, fmt.Errorf("engine: shard WALs disagree at seq %d: second %d vs shard %d's %d",
						seq, ref.Time, i, b.Time)
				}
				parts[i], active[i] = b.Readings, true
				if ref == nil {
					ref, t = b, b.Time
				}
				raws = append(raws, b.Readings...)
				rec.ReadingsReplayed += len(b.Readings)
				continue
			}
			b := &batches[i][k]
			if ref != nil && b.Time != ref.Time {
				closeAll()
				return nil, fmt.Errorf("engine: shard WALs disagree at seq %d: second %d vs shard %d's %d",
					seq, ref.Time, i, b.Time)
			}
			parts[i], active[i] = b.Readings, true
			if ref == nil {
				ref, t = b, b.Time
			}
			raws = append(raws, b.Readings...)
			rec.ReadingsReplayed += len(b.Readings)
			lastMeta = b
		}
		if ref == nil {
			continue
		}
		e.applyPartsMasked(t, parts, raws, active)
		for i := range markers {
			if seq > qeff[i] {
				missed[i] = append(missed[i], t)
			}
		}
		rec.RecordsReplayed++
	}
	e.walSeq = walSeqFinal

	// Cut ragged tails back to the common sequence so the next second
	// appends cleanly everywhere. Marked shards whose log outruns the live
	// cut lose that tail too: those seconds were truncated from the live
	// shards, so keeping a one-shard remnant would desynchronize the heal.
	for i, l := range e.wals {
		if l == nil || l.LastSeq() <= e.walSeq {
			continue
		}
		cut, terr := l.TruncateTo(e.walSeq)
		rec.TruncatedBytes += cut
		rec.Corrupt = true
		if terr != nil {
			closeAll()
			return nil, fmt.Errorf("engine: truncate shard %d ragged tail: %w", i, terr)
		}
	}
	rec.LastSeq = e.walSeq

	// Position the reorder buffer; the last replayed record's view wins
	// over the snapshot's (see Open for the rationale).
	switch {
	case lastMeta != nil:
		e.reorder.Restore(lastMeta.Time, lastMeta.MaxSeen, lastMeta.Drops, lastMeta.Forced)
	case rec.SnapshotRestored && rsnap.ReorderStarted:
		e.reorder.Restore(rsnap.Watermark, rsnap.MaxSeen, rsnap.Drops, rsnap.Forced)
	}

	// Re-quarantine the marked shards: seal their logs, merge the missed
	// lists (the router snapshot's record covers the window below the
	// barrier; replay rebuilt everything above it), and schedule healing.
	for i, qi := range markers {
		q := &quarInfo{
			seq:   qeff[i],
			cause: fmt.Errorf("engine: recovered quarantine marker (seq %d)", qi),
		}
		if c, ok := qcause[i]; ok {
			q.cause = c
		}
		for _, qr := range rsnap.Quarantined {
			if qr.Shard == i && qr.Seq == qi {
				q.missed = append(q.missed, qr.Missed...)
				q.splicedThrough = qr.SplicedThrough
				break
			}
		}
		q.missed = append(q.missed, missed[i]...)
		if l := e.wals[i]; l != nil {
			l.Close()
			e.wals[i] = nil
		}
		e.quar[i] = q
		e.shardState[i].Store(shardQuarantined)
		e.shards[i].shardTel.quarantined.Set(1)
		if qeff[i] != qi {
			if werr := writeQuarMarker(fsys, d.Dir, i, qeff[i]); werr != nil {
				log.Printf("engine: rewrite quarantine marker for shard %d: %v", i, werr)
			}
		}
		log.Printf("engine: shard %d recovered quarantined at seq %d (%d missed seconds); self-heal scheduled", i, qeff[i], len(q.missed))
	}

	e.recovery = rec
	e.lastSync = time.Now()
	e.tel.walReplayed.Set(uint64(rec.RecordsReplayed))
	e.tel.walTruncatedBytes.Set(uint64(rec.TruncatedBytes))
	e.tel.walSnapshotsSkipped.Set(uint64(rec.SnapshotsSkipped))
	if rec.Corrupt {
		log.Printf("engine: repaired sharded WAL in %s: %d bytes truncated, %d segments removed",
			d.Dir, rec.TruncatedBytes, rec.SegmentsRemoved)
	}
	if len(markers) > 0 {
		if e.liveShards() == 0 {
			e.failWAL(fmt.Errorf("all %d shards quarantined at recovery", e.n))
		} else {
			e.ingestMu.Lock()
			e.startHealer()
			e.kickHealer()
			e.ingestMu.Unlock()
		}
	}
	if d.SnapshotEvery > 0 && rec.RecordsReplayed >= d.SnapshotEvery {
		e.ingestMu.Lock()
		e.writeSnapshots()
		e.ingestMu.Unlock()
	}
	return e, nil
}

// appendWAL logs one flushed second to every live shard at the same sequence
// number (called under ingestMu, before the second is applied). Transient
// failures are retried with backoff; a shard whose append still fails is
// quarantined — its part becomes a typed drop — and the remaining shards
// continue. The sequence only advances if at least one shard got the record.
func (e *Sharded) appendWAL(t model.Time, parts [][]model.RawReading) {
	wm, _ := e.reorder.Watermark()
	ms, _ := e.reorder.MaxSeen()
	if wm != t {
		e.failWAL(fmt.Errorf("engine: flush watermark %d disagrees with flushed second %d", wm, t))
		return
	}
	forced := e.reorder.ForcedFlushes()
	drops := e.reorder.Drops()
	appended := false
	for i, l := range e.wals {
		if l == nil || e.shardState[i].Load() != shardLive {
			continue
		}
		b := wal.Batch{
			Time:     t,
			MaxSeen:  ms,
			Forced:   forced,
			Drops:    drops,
			Readings: parts[i],
		}
		e.walBuf = b.Encode(e.walBuf[:0])
		wstart := time.Now()
		err := retryTransient(e.cfg.Durability.Retry, e.tel, e.curTrace, i,
			e.streamID^e.walSeq^uint64(i)<<32, l.ResetTail, func() error {
				return l.Append(e.walSeq+1, e.walBuf)
			})
		if err != nil {
			e.quarantineShard(i, err)
			e.dropPart(i, t, parts)
			continue
		}
		e.shards[i].shardTel.walAppend.Observe(time.Since(wstart).Seconds())
		e.curTrace.Since("wal-append", i, wstart)
		appended = true
	}
	if !appended {
		return
	}
	e.walSeq++
	e.sinceSnap++
	e.tel.walRecords.Inc()
}

// syncWAL applies the fsync policy across every live shard log. Transient
// failures are retried; a shard whose fsync still fails is quarantined and
// the rest continue. Only an all-shards-down engine reports an error.
// Called under ingestMu.
func (e *Sharded) syncWAL(force bool) error {
	if e.wals == nil || e.walErr != nil {
		return e.walErr
	}
	switch e.cfg.Durability.Fsync {
	case wal.SyncOff:
		if !force {
			return nil
		}
	case wal.SyncInterval:
		if !force && time.Since(e.lastSync) < e.cfg.Durability.fsyncInterval() {
			return nil
		}
	}
	for i, l := range e.wals {
		if l == nil || e.shardState[i].Load() != shardLive {
			continue
		}
		fstart := time.Now()
		err := retryTransient(e.cfg.Durability.Retry, e.tel, e.curTrace, i,
			e.streamID^e.walSeq^uint64(i)<<32, nil, l.Sync)
		if err != nil {
			// The appended second IS in this shard's log; quarantine at the
			// current sequence with nothing missed yet.
			e.quarantineShard(i, err)
			continue
		}
		e.shards[i].shardTel.walFsync.Observe(time.Since(fstart).Seconds())
		e.curTrace.Since("wal-fsync", i, fstart)
	}
	if e.walErr != nil {
		return e.walErr
	}
	e.lastSync = time.Now()
	e.tel.walSyncs.Inc()
	return nil
}

func (e *Sharded) failWAL(err error) {
	if e.walErr == nil {
		e.walErr = fmt.Errorf("engine: WAL failed, ingestion stopped: %w", err)
		e.tel.walErrors.Inc()
		log.Printf("%v", e.walErr)
	}
}

// maybeSnapshot schedules the snapshot barrier once enough seconds
// accumulated. Called under ingestMu from flushSecond.
func (e *Sharded) maybeSnapshot() {
	if e.wals == nil || e.walErr != nil {
		return
	}
	if n := e.cfg.Durability.SnapshotEvery; n > 0 && e.sinceSnap >= n {
		e.writeSnapshots()
	}
}

// snapFailed mirrors System.snapFailed: count the failure and pace the
// retry schedule so a broken snapshot store doesn't turn every flush into a
// doomed write.
func (e *Sharded) snapFailed(err error) {
	e.tel.walSnapshotErrors.Inc()
	e.tel.snapshotFailures.Inc()
	e.snapFails++
	if e.snapFails >= snapFailBackoff {
		e.sinceSnap = 0
		e.snapFails = 0
	}
	log.Printf("%v", err)
}

// writeSnapshots writes the snapshot barrier: all live logs synced, then the
// router snapshot and every live shard's snapshot at the same sequence.
// Quarantined shards are skipped — the router snapshot records their seq and
// missed seconds instead, so a crash mid-quarantine still heals exactly.
// Failures are counted and paced but not sticky (the WALs still hold
// everything; a partial barrier never enters recovery's intersection), and
// pruning is frozen entirely while any shard is out: healing needs the
// quarantined shard's old snapshots and segments. Called under ingestMu.
func (e *Sharded) writeSnapshots() error {
	wm, started := e.reorder.Watermark()
	ms, _ := e.reorder.MaxSeen()
	rsnap := routerSnap{
		RangeQueries:   int(e.rangeQ.Load()),
		KNNQueries:     int(e.knnQ.Load()),
		Events:         e.eventLog,
		EventOff:       e.eventOff,
		ReorderStarted: started,
		Watermark:      wm,
		MaxSeen:        ms,
		Drops:          e.reorder.Drops(),
		Forced:         e.reorder.ForcedFlushes(),
	}
	degraded := false
	for i := 0; i < e.n; i++ {
		if e.shardState[i].Load() == shardLive || i == e.rejoining {
			continue
		}
		degraded = true
		if q := e.quar[i]; q != nil {
			rsnap.Quarantined = append(rsnap.Quarantined, quarRecord{
				Shard:          i,
				Seq:            q.seq,
				Missed:         append([]model.Time(nil), q.missed...),
				SplicedThrough: q.splicedThrough,
			})
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&rsnap); err != nil {
		err = fmt.Errorf("engine: encode router snapshot: %w", err)
		e.snapFailed(err)
		return err
	}
	// An unsynced tail record would let a surviving snapshot claim coverage
	// of a second a log lost; sync first so the claim is always true.
	if err := e.syncWAL(true); err != nil {
		return err
	}
	d := e.cfg.Durability
	fsys := d.fsys()
	if _, err := wal.WriteSnapshotFS(fsys, d.Dir, e.streamID, e.walSeq, buf.Bytes()); err != nil {
		err = fmt.Errorf("engine: write router snapshot: %w", err)
		e.snapFailed(err)
		return err
	}
	for i, sh := range e.shards {
		if e.shardState[i].Load() != shardLive && i != e.rejoining {
			continue
		}
		e.shardMu[i].Lock()
		hits, misses := sh.cache.Stats()
		ssnap := shardSnap{
			Stats:        sh.stats,
			Collector:    sh.col.Snapshot(),
			CacheEntries: sh.cache.Dump(),
			CacheHits:    hits,
			CacheMisses:  misses,
		}
		e.shardMu[i].Unlock()
		buf.Reset()
		if err := gob.NewEncoder(&buf).Encode(&ssnap); err != nil {
			err = fmt.Errorf("engine: encode shard %d snapshot: %w", i, err)
			e.snapFailed(err)
			return err
		}
		if _, err := wal.WriteSnapshotFS(fsys, shardDir(d.Dir, i), e.streamID, e.walSeq, buf.Bytes()); err != nil {
			err = fmt.Errorf("engine: write shard %d snapshot: %w", i, err)
			e.snapFailed(err)
			return err
		}
	}
	e.sinceSnap = 0
	e.snapFails = 0
	e.tel.walSnapshots.Inc()
	if degraded {
		return nil // freeze pruning: healing needs the history below the barrier
	}
	if _, _, err := wal.PruneSnapshotsFS(fsys, d.Dir, d.keepSnapshots()); err != nil {
		log.Printf("engine: prune router snapshots: %v", err)
		return nil
	}
	for i, l := range e.wals {
		if l == nil {
			continue
		}
		oldest, _, err := wal.PruneSnapshotsFS(fsys, shardDir(d.Dir, i), d.keepSnapshots())
		if err != nil {
			log.Printf("engine: prune shard %d snapshots: %v", i, err)
			return nil
		}
		if _, err := l.PruneSegments(oldest); err != nil {
			log.Printf("engine: prune shard %d segments: %v", i, err)
		}
	}
	return nil
}

// Close shuts the durability layer down cleanly, mirroring System.Close:
// the heal loop stopped, buffered seconds flushed and logged, a final
// snapshot barrier, all live logs synced and closed. Quarantined shards'
// markers stay on disk so the next OpenSharded resumes their healing.
// No-op for engines built with NewSharded.
func (e *Sharded) Close() error {
	e.stopHealer()
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	if e.wals == nil {
		return nil
	}
	e.reorder.FlushAll()
	if e.walErr == nil {
		e.writeSnapshots()
	}
	syncErr := e.syncWAL(true)
	var closeErr error
	for _, l := range e.wals {
		if l == nil {
			continue
		}
		if err := l.Close(); err != nil && closeErr == nil {
			closeErr = err
		}
	}
	e.wals = nil
	if e.walErr != nil && syncErr == nil {
		syncErr = e.walErr
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
