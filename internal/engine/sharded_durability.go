package engine

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/collector"
	"repro/internal/floorplan"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/wal"
)

// Sharded durability: one WAL stream per shard plus a router snapshot
// stream, all sharing the single engine's stream identity.
//
// Layout under Durability.Dir:
//
//	SHARDS            guard file: the shard count the directory was written with
//	snap-*.snap       router snapshots (merged event log, reorder position, query counters)
//	shard-0000/       shard 0's WAL segments and snapshots
//	shard-0001/       ...
//
// Every flushed second appends one record to EVERY shard's log at the same
// sequence number — empty subsets included — carrying the router's reorder
// metadata redundantly. Lockstep sequences make recovery simple and exact:
// the highest snapshot sequence readable in the router AND every shard is
// restored, then the shard logs are replayed second by second through the
// same applyParts path live ingestion uses. A crash between the per-shard
// appends of one second leaves a ragged tail; recovery replays to the
// shortest log's last sequence and truncates the shards that got further
// (wal.TruncateTo), which is exactly the all-or-nothing cut the single
// engine's torn-tail repair makes.

// shardGuardFile names the file pinning the directory's shard count.
const shardGuardFile = "SHARDS"

func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d", i))
}

// checkShardGuard pins dir to one shard count. The shard map is a pure
// function of (object, count), so opening a directory with a different
// count would scatter recovered objects across the wrong shards.
func checkShardGuard(dir string, n int) error {
	path := filepath.Join(dir, shardGuardFile)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("engine: create data dir: %w", err)
		}
		if err := os.WriteFile(path, []byte(strconv.Itoa(n)+"\n"), 0o644); err != nil {
			return fmt.Errorf("engine: write shard guard: %w", err)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("engine: read shard guard: %w", err)
	}
	have, perr := strconv.Atoi(strings.TrimSpace(string(data)))
	if perr != nil {
		return fmt.Errorf("engine: unreadable shard guard %s: %q", path, strings.TrimSpace(string(data)))
	}
	if have != n {
		return fmt.Errorf("engine: data directory %s was written with %d shards, refusing to open with %d (the shard map would misroute recovered objects)", dir, have, n)
	}
	return nil
}

// routerSnap is the router's share of a sharded snapshot: everything the
// shards do not own. The per-shard shardSnap carries the rest.
type routerSnap struct {
	RangeQueries   int
	KNNQueries     int
	Events         []model.Event
	EventOff       int
	ReorderStarted bool
	Watermark      model.Time
	MaxSeen        model.Time
	Drops          ingest.Drops
	Forced         int
}

// shardSnap is one shard's share of a sharded snapshot.
type shardSnap struct {
	Stats        Stats
	Collector    collector.Snapshot
	CacheEntries []cache.Entry
	CacheHits    int
	CacheMisses  int
}

// Recovery returns what OpenSharded found in the data directory.
func (e *Sharded) Recovery() RecoveryInfo { return e.recovery }

// DurabilityEnabled reports whether this engine writes WALs.
func (e *Sharded) DurabilityEnabled() bool {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	return e.wals != nil
}

// WALError returns the sticky WAL failure, or nil while the logs are healthy.
func (e *Sharded) WALError() error {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	return e.walErr
}

// OpenSharded assembles a Sharded engine like NewSharded and, when
// durability is enabled, recovers it from the data directory. The recovered
// state is bit-for-bit identical to the single engine's recovery over the
// same acked prefix, at any shard count.
func OpenSharded(plan *floorplan.Plan, dep *rfid.Deployment, cfg Config) (*Sharded, error) {
	e, err := NewSharded(plan, dep, cfg)
	if err != nil {
		return nil, err
	}
	d := cfg.Durability
	if !d.Enabled() {
		return e, nil
	}
	sid, err := cfg.StreamID(plan, dep)
	if err != nil {
		return nil, err
	}
	e.streamID = sid
	if err := checkShardGuard(d.Dir, e.n); err != nil {
		return nil, err
	}
	rec := RecoveryInfo{Enabled: true}

	// Pick the restore point: the highest snapshot sequence readable in the
	// router directory AND every shard directory. A snapshot barrier writes
	// all n+1 files at one sequence; a crash mid-barrier (or a corrupt
	// file) simply drops that sequence out of the intersection and recovery
	// replays more WAL. A stream-identity mismatch is fatal, not skippable.
	routerSnaps, err := wal.ListSnapshots(d.Dir)
	if err != nil {
		return nil, err
	}
	shardSnapsAt := make([]map[uint64]string, e.n)
	for i := range shardSnapsAt {
		infos, err := wal.ListSnapshots(shardDir(d.Dir, i))
		if err != nil {
			return nil, err
		}
		m := make(map[uint64]string, len(infos))
		for _, si := range infos {
			m[si.Seq] = si.Path
		}
		shardSnapsAt[i] = m
	}
	var (
		snapSeq uint64
		rsnap   routerSnap
		ssnaps  []shardSnap
	)
	for ri := len(routerSnaps) - 1; ri >= 0 && !rec.SnapshotRestored; ri-- {
		seq, payload, rerr := wal.ReadSnapshotFile(routerSnaps[ri].Path, sid)
		if rerr != nil {
			var mm *wal.MismatchError
			if errors.As(rerr, &mm) {
				return nil, rerr
			}
			rec.SnapshotsSkipped++
			continue
		}
		var rs routerSnap
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rs); derr != nil {
			rec.SnapshotsSkipped++
			continue
		}
		candidates := make([]shardSnap, e.n)
		complete := true
		for i := 0; i < e.n && complete; i++ {
			path, ok := shardSnapsAt[i][seq]
			if !ok {
				complete = false
				break
			}
			_, spayload, serr := wal.ReadSnapshotFile(path, sid)
			if serr != nil {
				var mm *wal.MismatchError
				if errors.As(serr, &mm) {
					return nil, serr
				}
				complete = false
				break
			}
			if derr := gob.NewDecoder(bytes.NewReader(spayload)).Decode(&candidates[i]); derr != nil {
				complete = false
			}
		}
		if !complete {
			rec.SnapshotsSkipped++
			continue
		}
		snapSeq, rsnap, ssnaps = seq, rs, candidates
		rec.SnapshotRestored = true
		rec.SnapshotSeq = seq
	}
	if rec.SnapshotRestored {
		e.rangeQ.Store(int64(rsnap.RangeQueries))
		e.knnQ.Store(int64(rsnap.KNNQueries))
		e.eventLog = rsnap.Events
		e.eventOff = rsnap.EventOff
		for i, sh := range e.shards {
			sh.stats = ssnaps[i].Stats
			sh.col.Restore(ssnaps[i].Collector)
			sh.cache.RestoreEntries(ssnaps[i].CacheEntries)
			sh.cache.RestoreStats(ssnaps[i].CacheHits, ssnaps[i].CacheMisses)
		}
		e.walSeq = snapSeq
	}

	// Open every shard log, collecting the decoded batches above the
	// snapshot; above it each shard's sequence must be gapless.
	closeAll := func() {
		for _, l := range e.wals {
			if l != nil {
				l.Close()
			}
		}
		e.wals = nil
	}
	e.wals = make([]*wal.Log, e.n)
	batches := make([][]wal.Batch, e.n)
	for i := 0; i < e.n; i++ {
		expected := snapSeq + 1
		l, report, oerr := wal.Open(shardDir(d.Dir, i),
			wal.Options{StreamID: sid, SegmentBytes: d.SegmentBytes},
			func(seq uint64, payload []byte) error {
				if seq <= snapSeq {
					return nil
				}
				if seq != expected {
					return fmt.Errorf("engine: shard %d WAL gap: snapshot covers seq %d but next record is %d (want %d)",
						i, snapSeq, seq, expected)
				}
				b, derr := wal.DecodeBatch(payload)
				if derr != nil {
					return derr
				}
				batches[i] = append(batches[i], b)
				expected++
				return nil
			})
		if oerr != nil {
			closeAll()
			return nil, oerr
		}
		e.wals[i] = l
		rec.Corrupt = rec.Corrupt || report.Corrupt
		rec.TruncatedBytes += report.TruncatedBytes
		rec.SegmentsRemoved += report.RemovedSegments
	}

	// Replay in lockstep to the shortest log. Each replayed sequence is one
	// flushed second, applied through the same path live ingestion uses.
	minAhead := len(batches[0])
	for _, bs := range batches[1:] {
		if len(bs) < minAhead {
			minAhead = len(bs)
		}
	}
	var lastMeta *wal.Batch
	for k := 0; k < minAhead; k++ {
		t := batches[0][k].Time
		parts := make([][]model.RawReading, e.n)
		var raws []model.RawReading
		for i := range batches {
			b := &batches[i][k]
			if b.Time != t {
				closeAll()
				return nil, fmt.Errorf("engine: shard WALs disagree at seq %d: shard 0 holds second %d, shard %d holds %d",
					snapSeq+uint64(k)+1, t, i, b.Time)
			}
			parts[i] = b.Readings
			raws = append(raws, b.Readings...)
			rec.ReadingsReplayed += len(b.Readings)
		}
		e.applyParts(t, parts, raws)
		lastMeta = &batches[0][k]
		rec.RecordsReplayed++
	}
	e.walSeq = snapSeq + uint64(minAhead)

	// Cut ragged tails back to the common sequence so the next second
	// appends cleanly everywhere.
	for i, l := range e.wals {
		if l.LastSeq() <= e.walSeq {
			continue
		}
		cut, terr := l.TruncateTo(e.walSeq)
		rec.TruncatedBytes += cut
		rec.Corrupt = true
		if terr != nil {
			closeAll()
			return nil, fmt.Errorf("engine: truncate shard %d ragged tail: %w", i, terr)
		}
	}
	rec.LastSeq = e.walSeq

	// Position the reorder buffer; the last replayed record's view wins
	// over the snapshot's (see Open for the rationale).
	switch {
	case lastMeta != nil:
		e.reorder.Restore(lastMeta.Time, lastMeta.MaxSeen, lastMeta.Drops, lastMeta.Forced)
	case rec.SnapshotRestored && rsnap.ReorderStarted:
		e.reorder.Restore(rsnap.Watermark, rsnap.MaxSeen, rsnap.Drops, rsnap.Forced)
	}

	e.recovery = rec
	e.lastSync = time.Now()
	e.tel.walReplayed.Set(uint64(rec.RecordsReplayed))
	e.tel.walTruncatedBytes.Set(uint64(rec.TruncatedBytes))
	e.tel.walSnapshotsSkipped.Set(uint64(rec.SnapshotsSkipped))
	if rec.Corrupt {
		log.Printf("engine: repaired sharded WAL in %s: %d bytes truncated, %d segments removed",
			d.Dir, rec.TruncatedBytes, rec.SegmentsRemoved)
	}
	if d.SnapshotEvery > 0 && rec.RecordsReplayed >= d.SnapshotEvery {
		e.writeSnapshots()
	}
	return e, nil
}

// appendWAL logs one flushed second to every shard at the same sequence
// number (called under ingestMu, before the second is applied). A failure
// part-way leaves a ragged tail that recovery truncates; the sticky error
// fail-stops ingestion either way.
func (e *Sharded) appendWAL(t model.Time, parts [][]model.RawReading) {
	wm, _ := e.reorder.Watermark()
	ms, _ := e.reorder.MaxSeen()
	if wm != t {
		e.failWAL(fmt.Errorf("engine: flush watermark %d disagrees with flushed second %d", wm, t))
		return
	}
	forced := e.reorder.ForcedFlushes()
	drops := e.reorder.Drops()
	for i, l := range e.wals {
		b := wal.Batch{
			Time:     t,
			MaxSeen:  ms,
			Forced:   forced,
			Drops:    drops,
			Readings: parts[i],
		}
		e.walBuf = b.Encode(e.walBuf[:0])
		wstart := time.Now()
		if err := l.Append(e.walSeq+1, e.walBuf); err != nil {
			e.failWAL(err)
			return
		}
		e.shards[i].shardTel.walAppend.Observe(time.Since(wstart).Seconds())
		e.curTrace.Since("wal-append", i, wstart)
	}
	e.walSeq++
	e.sinceSnap++
	e.tel.walRecords.Inc()
}

// syncWAL applies the fsync policy across every shard log; the first error
// is sticky. Called under ingestMu.
func (e *Sharded) syncWAL(force bool) error {
	if e.wals == nil || e.walErr != nil {
		return e.walErr
	}
	switch e.cfg.Durability.Fsync {
	case wal.SyncOff:
		if !force {
			return nil
		}
	case wal.SyncInterval:
		if !force && time.Since(e.lastSync) < e.cfg.Durability.fsyncInterval() {
			return nil
		}
	}
	for i, l := range e.wals {
		fstart := time.Now()
		if err := l.Sync(); err != nil {
			e.failWAL(err)
			return e.walErr
		}
		e.shards[i].shardTel.walFsync.Observe(time.Since(fstart).Seconds())
		e.curTrace.Since("wal-fsync", i, fstart)
	}
	e.lastSync = time.Now()
	e.tel.walSyncs.Inc()
	return nil
}

func (e *Sharded) failWAL(err error) {
	if e.walErr == nil {
		e.walErr = fmt.Errorf("engine: WAL failed, ingestion stopped: %w", err)
		e.tel.walErrors.Inc()
		log.Printf("%v", e.walErr)
	}
}

// maybeSnapshot schedules the snapshot barrier once enough seconds
// accumulated. Called under ingestMu from flushSecond.
func (e *Sharded) maybeSnapshot() {
	if e.wals == nil || e.walErr != nil {
		return
	}
	if n := e.cfg.Durability.SnapshotEvery; n > 0 && e.sinceSnap >= n {
		e.writeSnapshots()
	}
}

// writeSnapshots writes the snapshot barrier: all logs synced, then the
// router snapshot and every shard snapshot at the same sequence. Failures
// are logged and counted but not sticky — the WALs still hold everything; a
// partial barrier just never enters recovery's intersection. Called under
// ingestMu.
func (e *Sharded) writeSnapshots() {
	wm, started := e.reorder.Watermark()
	ms, _ := e.reorder.MaxSeen()
	rsnap := routerSnap{
		RangeQueries:   int(e.rangeQ.Load()),
		KNNQueries:     int(e.knnQ.Load()),
		Events:         e.eventLog,
		EventOff:       e.eventOff,
		ReorderStarted: started,
		Watermark:      wm,
		MaxSeen:        ms,
		Drops:          e.reorder.Drops(),
		Forced:         e.reorder.ForcedFlushes(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&rsnap); err != nil {
		e.tel.walSnapshotErrors.Inc()
		log.Printf("engine: encode router snapshot: %v", err)
		return
	}
	// An unsynced tail record would let a surviving snapshot claim coverage
	// of a second a log lost; sync first so the claim is always true.
	if err := e.syncWAL(true); err != nil {
		return
	}
	if _, err := wal.WriteSnapshot(e.cfg.Durability.Dir, e.streamID, e.walSeq, buf.Bytes()); err != nil {
		e.tel.walSnapshotErrors.Inc()
		log.Printf("engine: write router snapshot: %v", err)
		return
	}
	for i, sh := range e.shards {
		e.shardMu[i].Lock()
		hits, misses := sh.cache.Stats()
		ssnap := shardSnap{
			Stats:        sh.stats,
			Collector:    sh.col.Snapshot(),
			CacheEntries: sh.cache.Dump(),
			CacheHits:    hits,
			CacheMisses:  misses,
		}
		e.shardMu[i].Unlock()
		buf.Reset()
		if err := gob.NewEncoder(&buf).Encode(&ssnap); err != nil {
			e.tel.walSnapshotErrors.Inc()
			log.Printf("engine: encode shard %d snapshot: %v", i, err)
			return
		}
		if _, err := wal.WriteSnapshot(shardDir(e.cfg.Durability.Dir, i), e.streamID, e.walSeq, buf.Bytes()); err != nil {
			e.tel.walSnapshotErrors.Inc()
			log.Printf("engine: write shard %d snapshot: %v", i, err)
			return
		}
	}
	e.sinceSnap = 0
	e.tel.walSnapshots.Inc()
	if _, _, err := wal.PruneSnapshots(e.cfg.Durability.Dir, e.cfg.Durability.keepSnapshots()); err != nil {
		log.Printf("engine: prune router snapshots: %v", err)
		return
	}
	for i, l := range e.wals {
		oldest, _, err := wal.PruneSnapshots(shardDir(e.cfg.Durability.Dir, i), e.cfg.Durability.keepSnapshots())
		if err != nil {
			log.Printf("engine: prune shard %d snapshots: %v", i, err)
			return
		}
		if _, err := l.PruneSegments(oldest); err != nil {
			log.Printf("engine: prune shard %d segments: %v", i, err)
		}
	}
}

// Close shuts the durability layer down cleanly, mirroring System.Close:
// buffered seconds flushed and logged, a final snapshot barrier, all logs
// synced and closed. No-op for engines built with NewSharded.
func (e *Sharded) Close() error {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	if e.wals == nil {
		return nil
	}
	e.reorder.FlushAll()
	if e.walErr == nil {
		e.writeSnapshots()
	}
	syncErr := e.syncWAL(true)
	var closeErr error
	for _, l := range e.wals {
		if err := l.Close(); err != nil && closeErr == nil {
			closeErr = err
		}
	}
	e.wals = nil
	if e.walErr != nil && syncErr == nil {
		syncErr = e.walErr
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
