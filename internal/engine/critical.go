package engine

import (
	"repro/internal/depgraph"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/walkgraph"
)

// Critical devices (Yang et al., discussed in the paper's related work):
// under a cell-granularity probability model, a range query's result can
// only change when an object ENTERs or LEAVEs one of the devices bounding
// the cells its window intersects. The registry uses this to skip
// re-evaluating range queries whose critical devices saw no events.
//
// With particle filter inference this becomes a heuristic rather than an
// exact rule — coasting alone spreads distributions and can move membership
// probabilities across the threshold without any device event — so the
// optimization is opt-in (Registry.SetEventDriven) and benchmarked.

// criticalDevices returns the readers whose events can affect a range query
// over the window: the devices adjacent to every deployment-graph cell the
// window touches.
func criticalDevices(dg *depgraph.Graph, window geom.Rect) map[model.ReaderID]bool {
	// Find the cells the window intersects.
	touched := make(map[depgraph.CellID]bool)
	for _, cell := range dg.Cells() {
		if cellIntersects(dg, cell, window) {
			touched[cell.ID] = true
		}
	}
	// Collect the devices adjacent to those cells.
	out := make(map[model.ReaderID]bool)
	for _, r := range dg.Deployment().Readers() {
		for _, c := range dg.CellsAdjacentTo(r.ID) {
			if touched[c] {
				out[r.ID] = true
				break
			}
		}
	}
	return out
}

// cellIntersects reports whether any part of a cell (hallway fragments at
// one-meter sampling, or member room areas) lies inside the window.
func cellIntersects(dg *depgraph.Graph, cell depgraph.Cell, window geom.Rect) bool {
	g := dg.WalkGraph()
	plan := g.Plan()
	for _, room := range cell.Rooms {
		if plan.Room(room).Bounds.Overlaps(window) {
			return true
		}
	}
	for _, fid := range cell.Fragments {
		f := dg.Fragment(fid)
		e := g.Edge(f.Edge)
		if e.Kind != walkgraph.HallwayEdge {
			continue
		}
		// The window must reach the hallway strip, not just the centerline:
		// grow it by half the hallway width before sampling the centerline.
		half := plan.Hallway(e.Hallway).Width / 2
		win := window.Expand(half)
		// Sample the fragment every meter (plus both ends).
		for off := f.Lo; ; off += 1.0 {
			clipped := off
			if clipped > f.Hi {
				clipped = f.Hi
			}
			if win.Contains(g.Point(walkgraph.Location{Edge: f.Edge, Offset: clipped})) {
				return true
			}
			if clipped == f.Hi {
				break
			}
		}
	}
	return false
}
