package engine

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/anchor"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/health"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/obs/trace"
	"repro/internal/particle"
	"repro/internal/query"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/shardmap"
	"repro/internal/wal"
	"repro/internal/walkgraph"
)

// MaxShards bounds Config.Shards. The cap is generous — shards are
// in-process and cheap — but a typo like -shards=100000 should fail fast
// rather than allocate a hundred thousand collectors.
const MaxShards = 256

// Sharded partitions object state across N independent single-shard engines
// by consistent hash of the object ID (internal/shardmap) and routes every
// operation through a thin deterministic layer:
//
//   - Ingestion runs through ONE reorder buffer and ONE reader-health
//     monitor owned by the router; each flushed second is split into
//     per-shard subsets (order-preserving) and applied to all shards in
//     parallel, then the shards' ENTER/LEAVE events are k-way merged by
//     (Time, Object) — the exact key the collector sorts by — into one
//     router-owned event log.
//   - Queries gather candidate summaries from every shard (merged in object
//     order), prune once, scatter the preprocessing to the owning shards in
//     parallel, merge the disjoint per-shard tables, and evaluate once.
//   - Stats, CacheStats and KnownObjects are per-shard values combined with
//     order-insensitive sums or deterministic merges.
//
// Because every per-object computation is keyed by (Seed, object, last
// reading time) — never by which other objects share the engine — a Sharded
// engine's answers, Stats, and recovered state are bit-for-bit identical to
// the single-shard engine at any shard count (DESIGN.md §14).
//
// Sharded synchronizes internally (unlike System): ingest, queries, and
// stats reads may run concurrently. The lock hierarchy is
// ingestMu > healthMu > histMu > shardMu[i]; locks are only ever acquired
// left to right, and the per-shard locks are never nested with each other.
type Sharded struct {
	cfg    Config
	n      int
	shards []*System
	tel    *Telemetry

	// shardMu[i] guards shards[i]: its collector, cache, filter state and
	// stats counters. The router never holds two shard locks nested except
	// transiently through kMerge-free paths (it does not).
	shardMu []sync.Mutex

	// ingestMu serializes the ingestion pipeline: the reorder buffer, the
	// health monitor, the merged event log, the WAL streams, and the
	// oversized-body drop counter.
	ingestMu   sync.Mutex
	reorder    *ingest.Reorder
	monitor    *health.Monitor
	eventLog   []model.Event
	eventOff   int
	extraDrops ingest.Drops

	// curTrace is the trace of the in-flight IngestContext call, read by the
	// reorder sink and the WAL/apply paths it triggers. Guarded by ingestMu.
	curTrace *trace.Context

	// healthMu fences the unhealthy-reader set and the particle budget:
	// queries hold it for read so a concurrent flush cannot swap the
	// sensing model mid-scatter.
	healthMu sync.RWMutex

	// histMu guards the router-owned historical-query state: the shared
	// random source and the recycled pool, consumed serially exactly like
	// the single engine's PreprocessAt.
	histMu   sync.Mutex
	src      *rng.Source
	histPool *particle.Pool

	// metricsMu serializes SyncMetrics (concurrent /metrics scrapes).
	metricsMu sync.Mutex

	rangeQ atomic.Int64
	knnQ   atomic.Int64

	// Durability (sharded_durability.go): one WAL stream per shard, all
	// advancing in lockstep — every flushed second appends one record to
	// every shard's log at the same sequence number.
	wals      []*wal.Log
	walSeq    uint64
	walBuf    []byte
	walErr    error
	streamID  uint64
	lastSync  time.Time
	sinceSnap int
	snapFails int
	recovery  RecoveryInfo

	// Fault isolation (sharded_heal.go): per-shard quarantine state. The
	// states are atomics so query paths read them lock-free; transitions
	// and the quar book-keeping happen under ingestMu.
	shardState []atomic.Int32
	quar       []*quarInfo
	// rejoining names the shard a heal is committing (its snapshot joins the
	// barrier even though its state is still HEALING — LIVE flips only after
	// the barrier is durable, so lock-free readers never see an uncommitted
	// rejoin). -1 outside tryHeal.
	rejoining int
	healKick  chan struct{}
	healStop  chan struct{}
	healDone  chan struct{}
	healerOn  bool
}

// NewSharded assembles a sharded engine. cfg.Shards selects the shard count
// (0 and 1 both mean one shard); the rest of the configuration is applied
// to every shard, except that the router owns ingestion (Config.Ingest),
// health monitoring (Config.Health), and durability (Config.Durability) —
// use OpenSharded for the latter.
func NewSharded(plan *floorplan.Plan, dep *rfid.Deployment, cfg Config) (*Sharded, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	if n > MaxShards {
		return nil, fmt.Errorf("engine: %d shards exceeds the maximum of %d", n, MaxShards)
	}
	shardCfg := cfg
	shardCfg.Shards = 0
	shardCfg.Ingest = ingest.Config{}       // router owns the reorder buffer
	shardCfg.Health = health.Config{}       // router owns the monitor
	shardCfg.Durability = DurabilityConfig{} // router owns the WAL streams
	// Split the preprocessing worker budget across shards: a scatter runs
	// all shards' phase-2 pools at once, and n*Workers goroutines would
	// oversubscribe the cores without buying determinism (the output is
	// identical at any worker count).
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shardCfg.Workers = workers / n
	if shardCfg.Workers < 1 {
		shardCfg.Workers = 1
	}

	e := &Sharded{
		cfg:        cfg,
		n:          n,
		shards:     make([]*System, n),
		shardMu:    make([]sync.Mutex, n),
		src:        rng.New(cfg.Seed),
		histPool:   particle.NewPool(),
		shardState: make([]atomic.Int32, n),
		quar:       make([]*quarInfo, n),
		rejoining:  -1,
	}
	for i := range e.shards {
		sh, err := New(plan, dep, shardCfg)
		if err != nil {
			return nil, err
		}
		e.shards[i] = sh
	}
	// All shards publish into shard 0's telemetry so counters, histograms
	// and the trace ring aggregate exactly like the single engine's (the
	// record paths are atomic or ring-locked, so concurrent shards are
	// safe). Re-instrument the components constructed against the private
	// surfaces.
	e.tel = e.shards[0].tel
	for _, sh := range e.shards[1:] {
		sh.tel = e.tel
		sh.filter.Instrument(e.tel.filterMetrics())
		sh.cache.Instrument(e.tel.cacheHits, e.tel.cacheMisses, e.tel.cacheEvictions)
	}
	// Per-shard identity and labeled metric children. Set after the adoption
	// loop: each shard's New() resolved shardTel against its private registry,
	// so the handles must be re-resolved against the shared telemetry.
	for i, sh := range e.shards {
		sh.shardID = i
		sh.shardTel = e.tel.shardMetrics(i)
	}
	e.reorder = ingest.NewReorder(cfg.Ingest, e.flushSecond)
	if cfg.Health.Enabled {
		m, err := health.NewMonitor(cfg.Health, dep.NumReaders())
		if err != nil {
			return nil, err
		}
		e.monitor = m
	}
	return e, nil
}

// MustNewSharded is NewSharded for known-valid inputs.
func MustNewSharded(plan *floorplan.Plan, dep *rfid.Deployment, cfg Config) *Sharded {
	e, err := NewSharded(plan, dep, cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// NumShards returns the shard count.
func (e *Sharded) NumShards() int { return e.n }

// SelfSynchronizing reports that Sharded performs its own locking; the HTTP
// server skips its global mutex when the engine says so.
func (e *Sharded) SelfSynchronizing() bool { return true }

// Accessors mirror System's; the floor plan artifacts are identical in
// every shard, so shard 0's serve.

// Graph returns the indoor walking graph.
func (e *Sharded) Graph() *walkgraph.Graph { return e.shards[0].g }

// AnchorIndex returns the anchor point index.
func (e *Sharded) AnchorIndex() *anchor.Index { return e.shards[0].idx }

// Deployment returns the reader deployment.
func (e *Sharded) Deployment() *rfid.Deployment { return e.shards[0].dep }

// Telemetry returns the shared observability surface.
func (e *Sharded) Telemetry() *Telemetry { return e.tel }

// Now returns the most recently ingested second.
func (e *Sharded) Now() model.Time {
	e.shardMu[0].Lock()
	defer e.shardMu[0].Unlock()
	return e.shards[0].col.Now()
}

// ---------------------------------------------------------------------------
// Ingestion: one reorder buffer, scatter per second, deterministic event merge.

// Ingest feeds one delivery through the router's reorder buffer; flushed
// seconds are partitioned by object and applied to every shard. The error
// contract matches System.Ingest, including sticky WAL fail-stop.
func (e *Sharded) Ingest(t model.Time, raws []model.RawReading) error {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	return e.ingestLocked(t, raws)
}

// IngestContext is Ingest carrying a request trace: the reorder wait, the
// per-shard WAL appends and fsyncs, and the per-shard apply work of any
// second this delivery flushes all land as spans on the caller's trace.
func (e *Sharded) IngestContext(ctx context.Context, t model.Time, raws []model.RawReading) error {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.curTrace = trace.From(ctx)
	defer func() { e.curTrace = nil }()
	return e.ingestLocked(t, raws)
}

func (e *Sharded) ingestLocked(t model.Time, raws []model.RawReading) error {
	if e.walErr != nil {
		return e.walErr
	}
	qBefore := e.extraDrops.QuarantinedReadings
	rstart := time.Now()
	err := e.reorder.Offer(t, raws)
	e.curTrace.Since("reorder", trace.RouterShard, rstart)
	if serr := e.syncWAL(false); serr != nil {
		return serr
	}
	if e.walErr != nil {
		return e.walErr
	}
	if err == nil {
		// Readings routed to a quarantined shard were accepted by the reorder
		// buffer but can reach no WAL; report them as a typed partial drop so
		// senders see the degradation instead of a silent ack.
		if dq := e.extraDrops.QuarantinedReadings - qBefore; dq > 0 {
			wm, _ := e.reorder.Watermark()
			return &ingest.Error{Kind: ingest.KindQuarantined, Time: t, Watermark: wm, Dropped: dq}
		}
	}
	return err
}

// FlushIngest drains every buffered second regardless of the lateness
// horizon, like System.FlushIngest.
func (e *Sharded) FlushIngest() {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.reorder.FlushAll()
	e.syncWAL(true)
}

// flushSecond is the reorder buffer's sink (called under ingestMu). The
// second is partitioned once; with durability on, one WAL record per shard
// is appended before anything is applied.
func (e *Sharded) flushSecond(t model.Time, raws []model.RawReading) {
	var lag model.Time
	if ms, ok := e.reorder.MaxSeen(); ok && ms > t {
		lag = ms - t
	}
	e.tel.reorderLag.Observe(float64(lag))
	parts := e.partition(raws)
	if e.wals != nil && e.walErr == nil {
		e.dropQuarantined(t, parts)
		e.appendWAL(t, parts)
	}
	e.applyParts(t, parts, raws)
	e.maybeSnapshot()
}

// partition splits one second's readings into per-shard subsets, preserving
// delivery order within each subset. Every shard gets an entry (possibly
// empty): an empty subset still advances the shard's clock and runs its
// LEAVE detection, exactly like the readings' absence would in the single
// engine.
func (e *Sharded) partition(raws []model.RawReading) [][]model.RawReading {
	parts := make([][]model.RawReading, e.n)
	if e.n == 1 {
		parts[0] = raws
		return parts
	}
	for _, r := range raws {
		i := shardmap.Of(r.Object, e.n)
		parts[i] = append(parts[i], r)
	}
	return parts
}

// applyParts applies one flushed second to every live shard (quarantined
// shards' state is frozen at their cut sequence; healing fast-forwards them).
// It is the recovery replay path too, so it must not touch the WAL. raws is
// the full second (the concatenation of parts) for the order-insensitive
// health monitor.
func (e *Sharded) applyParts(t model.Time, parts [][]model.RawReading, raws []model.RawReading) {
	e.applyPartsMasked(t, parts, raws, nil)
}

// applyPartsMasked is applyParts with an explicit shard mask; a nil mask
// means "every shard in the LIVE state". Recovery replay uses the mask to
// include a recovering shard only for the seconds its own log covers.
func (e *Sharded) applyPartsMasked(t model.Time, parts [][]model.RawReading, raws []model.RawReading, active []bool) {
	if e.monitor != nil && e.monitor.ObserveSecond(t, raws) {
		e.refreshHealth()
	}
	include := func(i int) bool {
		if active != nil {
			return active[i]
		}
		return e.shardState[i].Load() == shardLive
	}
	evs := make([][]model.Event, e.n)
	tr := e.curTrace // captured before the scatter; nil during recovery replay
	apply := func(i int) {
		sh := e.shards[i]
		e.shardMu[i].Lock()
		defer e.shardMu[i].Unlock()
		astart := time.Now()
		dropped := sh.col.Drops().Readings()
		sh.col.IngestSecond(t, parts[i])
		sh.stats.ReadingsIngested += len(parts[i]) - (sh.col.Drops().Readings() - dropped)
		evs[i] = sh.col.DrainEvents()
		for _, ev := range evs[i] {
			if ev.Kind == model.Enter {
				sh.cache.Invalidate(ev.Object, ev.Reader)
			}
		}
		sh.shardTel.step.Observe(time.Since(astart).Seconds())
		sh.shardTel.queueDepth.Set(float64(len(parts[i])))
		tr.Since("collect", i, astart)
	}
	if e.n == 1 {
		if include(0) {
			apply(0)
		}
	} else {
		var wg sync.WaitGroup
		for i := 0; i < e.n; i++ {
			if !include(i) {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				apply(i)
			}(i)
		}
		wg.Wait()
	}
	// Each shard's drain is sorted by (Time, Object) — the collector pins
	// that order — and an object lives in exactly one shard, so the k-way
	// merge reproduces the single collector's total order.
	merged := kMerge(evs, eventLess)
	if e.monitor != nil {
		for _, ev := range merged {
			if ev.Kind == model.Enter {
				e.monitor.Release(ev.Object)
			}
		}
	}
	e.eventLog = append(e.eventLog, merged...)
	if len(e.eventLog) > maxEventLog {
		drop := len(e.eventLog) - maxEventLog
		e.eventLog = append(e.eventLog[:0:0], e.eventLog[drop:]...)
		e.eventOff += drop
	}
}

// refreshHealth pushes the monitor's unhealthy set into every shard's
// sensing-model consumers. Writer side of healthMu: a concurrent query sees
// either the whole old set or the whole new one, never a mix of shards.
func (e *Sharded) refreshHealth() {
	un := e.monitor.Unhealthy()
	e.healthMu.Lock()
	for _, sh := range e.shards {
		sh.filter.SetUnhealthy(un)
		sh.pruner.SetUnhealthy(un)
	}
	e.healthMu.Unlock()
	e.tel.healthTransitions.Inc()
}

// EventsSince mirrors System.EventsSince over the router's merged log.
func (e *Sharded) EventsSince(seq int) (events []model.Event, next int, truncated bool) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	next = e.eventOff + len(e.eventLog)
	if seq < e.eventOff {
		return e.eventLog, next, true
	}
	return e.eventLog[seq-e.eventOff:], next, false
}

// ---------------------------------------------------------------------------
// Queries: gather candidates, prune once, scatter preprocessing, merge, eval.

// gatherInfos merges every live shard's candidate summaries in ascending
// object order — identical to the single engine's objectInfos because
// KnownObjects is sorted and shards hold disjoint objects. Quarantined
// shards are excluded: their state is frozen mid-quarantine and answering
// from it would mix epochs; callers surface the gap via quarantineErr.
// Callers hold healthMu.
func (e *Sharded) gatherInfos() []query.ObjectInfo {
	per := make([][]query.ObjectInfo, e.n)
	for i, sh := range e.shards {
		if e.shardState[i].Load() != shardLive {
			continue
		}
		e.shardMu[i].Lock()
		per[i] = sh.objectInfos()
		e.shardMu[i].Unlock()
	}
	return kMerge(per, infoLess)
}

func (e *Sharded) gatherInfosAt(t model.Time) []query.ObjectInfo {
	per := make([][]query.ObjectInfo, e.n)
	for i, sh := range e.shards {
		if e.shardState[i].Load() != shardLive {
			continue
		}
		e.shardMu[i].Lock()
		per[i] = sh.objectInfosAt(t)
		e.shardMu[i].Unlock()
	}
	return kMerge(per, infoLess)
}

// preprocess scatters the candidate set to the owning shards, runs their
// preprocessing pipelines in parallel, and merges the disjoint tables.
// Callers hold healthMu (read side).
func (e *Sharded) preprocess(cands []model.ObjectID) *anchor.Table {
	tab, _ := e.preprocessCtx(nil, cands)
	return tab
}

func (e *Sharded) preprocessCtx(ctx context.Context, cands []model.ObjectID) (*anchor.Table, error) {
	tr := trace.From(ctx)
	if e.n == 1 {
		if e.shardState[0].Load() != shardLive {
			return anchor.NewTable(), nil
		}
		e.shardMu[0].Lock()
		defer e.shardMu[0].Unlock()
		estart := time.Now()
		tab, err := e.shards[0].preprocessCtx(ctx, cands)
		e.shards[0].shardTel.evaluate.Observe(time.Since(estart).Seconds())
		tr.Since("evaluate", 0, estart)
		return tab, err
	}
	parts := make([][]model.ObjectID, e.n)
	for _, obj := range cands {
		i := shardmap.Of(obj, e.n)
		parts[i] = append(parts[i], obj)
	}
	tabs := make([]*anchor.Table, e.n)
	errs := make([]error, e.n)
	var wg sync.WaitGroup
	for i := range e.shards {
		if len(parts[i]) == 0 || e.shardState[i].Load() != shardLive {
			// A zero-duration span still attributes the shard's (absent) share
			// of the scatter, so a trace always shows all n shards.
			tr.Add("evaluate", i, time.Now(), 0)
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e.shardMu[i].Lock()
			defer e.shardMu[i].Unlock()
			estart := time.Now()
			tabs[i], errs[i] = e.shards[i].preprocessCtx(ctx, parts[i])
			e.shards[i].shardTel.evaluate.Observe(time.Since(estart).Seconds())
			tr.Since("evaluate", i, estart)
		}(i)
	}
	wg.Wait()
	merged := anchor.NewTable()
	for _, tab := range tabs {
		if tab == nil {
			continue
		}
		for _, obj := range tab.Objects() {
			merged.SetDistribution(obj, tab.DistributionOf(obj))
		}
	}
	return merged, firstDeadline(errs...)
}

// Preprocess is the public scatter-gather preprocessing entry point,
// mirroring System.Preprocess.
func (e *Sharded) Preprocess(cands []model.ObjectID) *anchor.Table {
	e.healthMu.RLock()
	defer e.healthMu.RUnlock()
	return e.preprocess(cands)
}

// RangeQuery mirrors System.RangeQuery: prune once over the merged
// candidate summaries, scatter the preprocessing, evaluate once.
func (e *Sharded) RangeQuery(window geom.Rect) model.ResultSet {
	start := time.Now()
	e.healthMu.RLock()
	defer e.healthMu.RUnlock()
	infos := e.gatherInfos()
	var cands []model.ObjectID
	if e.cfg.UsePruning {
		cands = e.shards[0].pruner.RangeCandidates(infos, []geom.Rect{window}, e.Now())
	} else {
		cands = infosToIDs(infos)
	}
	tab := e.preprocess(cands)
	e.rangeQ.Add(1)
	rs := e.shards[0].eval.Range(tab, window)
	e.observeQuery("range", rangeDetail(window.Min.X, window.Min.Y,
		window.Max.X-window.Min.X, window.Max.Y-window.Min.Y), len(cands), start, nil)
	return rs
}

// KNNQuery mirrors System.KNNQuery.
func (e *Sharded) KNNQuery(q geom.Point, k int) model.ResultSet {
	start := time.Now()
	e.healthMu.RLock()
	defer e.healthMu.RUnlock()
	infos := e.gatherInfos()
	var cands []model.ObjectID
	if e.cfg.UsePruning {
		cands = e.shards[0].pruner.KNNCandidates(infos, q, k, e.Now())
	} else {
		cands = infosToIDs(infos)
	}
	tab := e.preprocess(cands)
	e.knnQ.Add(1)
	rs := e.shards[0].eval.KNN(tab, q, k)
	e.observeQuery("knn", knnDetail(q.X, q.Y, k), len(cands), start, nil)
	return rs
}

// RangeQueryContext mirrors System.RangeQueryContext's partial-result
// contract over the sharded scatter.
func (e *Sharded) RangeQueryContext(ctx context.Context, window geom.Rect) (model.ResultSet, error) {
	start := time.Now()
	tr := trace.From(ctx)
	e.healthMu.RLock()
	defer e.healthMu.RUnlock()
	gstart := time.Now()
	infos := e.gatherInfos()
	tr.Since("gather", trace.RouterShard, gstart)
	var cands []model.ObjectID
	var perr error
	pstart := time.Now()
	if e.cfg.UsePruning {
		cands, perr = e.shards[0].pruner.RangeCandidatesContext(ctx, infos, []geom.Rect{window}, e.Now())
	} else {
		cands = infosToIDs(infos)
	}
	tr.Since("prune", trace.RouterShard, pstart)
	tab, terr := e.preprocessCtx(ctx, cands)
	e.rangeQ.Add(1)
	mstart := time.Now()
	rs, eerr := e.shards[0].eval.RangeContext(ctx, tab, window)
	tr.Since("merge", trace.RouterShard, mstart)
	e.observeQuery("range", rangeDetail(window.Min.X, window.Min.Y,
		window.Max.X-window.Min.X, window.Max.Y-window.Min.Y), len(cands), start, tr)
	if err := firstDeadline(perr, terr, eerr); err != nil {
		e.tel.deadlineExceeded.Inc()
		tr.SetDeadline()
		return rs, joinPartial(err, e.quarantineErr())
	}
	return rs, e.quarantineErr()
}

// KNNQueryContext mirrors System.KNNQueryContext.
func (e *Sharded) KNNQueryContext(ctx context.Context, q geom.Point, k int) (model.ResultSet, error) {
	start := time.Now()
	tr := trace.From(ctx)
	e.healthMu.RLock()
	defer e.healthMu.RUnlock()
	gstart := time.Now()
	infos := e.gatherInfos()
	tr.Since("gather", trace.RouterShard, gstart)
	var cands []model.ObjectID
	var perr error
	pstart := time.Now()
	if e.cfg.UsePruning {
		cands, perr = e.shards[0].pruner.KNNCandidatesContext(ctx, infos, q, k, e.Now())
	} else {
		cands = infosToIDs(infos)
	}
	tr.Since("prune", trace.RouterShard, pstart)
	tab, terr := e.preprocessCtx(ctx, cands)
	e.knnQ.Add(1)
	mstart := time.Now()
	rs, eerr := e.shards[0].eval.KNNContext(ctx, tab, q, k)
	tr.Since("merge", trace.RouterShard, mstart)
	e.observeQuery("knn", knnDetail(q.X, q.Y, k), len(cands), start, tr)
	if err := firstDeadline(perr, terr, eerr); err != nil {
		e.tel.deadlineExceeded.Inc()
		tr.SetDeadline()
		return rs, joinPartial(err, e.quarantineErr())
	}
	return rs, e.quarantineErr()
}

// RangeQueryAt answers a historical range query. The filter runs consume
// the router's shared random source serially in sorted object order, so the
// draw sequence matches the single engine's PreprocessAt exactly.
func (e *Sharded) RangeQueryAt(window geom.Rect, t model.Time) model.ResultSet {
	e.healthMu.RLock()
	defer e.healthMu.RUnlock()
	infos := e.gatherInfosAt(t)
	cands := infosToIDs(infos)
	if e.cfg.UsePruning {
		cands = e.shards[0].pruner.RangeCandidates(infos, []geom.Rect{window}, t)
	}
	tab := e.preprocessAt(cands, t)
	return e.shards[0].eval.Range(tab, window)
}

// KNNQueryAt answers a historical kNN query; see RangeQueryAt.
func (e *Sharded) KNNQueryAt(q geom.Point, k int, t model.Time) model.ResultSet {
	e.healthMu.RLock()
	defer e.healthMu.RUnlock()
	infos := e.gatherInfosAt(t)
	cands := infosToIDs(infos)
	if e.cfg.UsePruning {
		cands = e.shards[0].pruner.KNNCandidates(infos, q, k, t)
	}
	tab := e.preprocessAt(cands, t)
	return e.shards[0].eval.KNN(tab, q, k)
}

// preprocessAt is the historical (uncached, serial) pipeline. It must stay
// serial: historical runs draw from one shared source, and the draw order
// is part of the reproducibility contract.
func (e *Sharded) preprocessAt(cands []model.ObjectID, t model.Time) *anchor.Table {
	e.histMu.Lock()
	defer e.histMu.Unlock()
	tab := anchor.NewTable()
	sorted := append([]model.ObjectID(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, obj := range sorted {
		i := shardmap.Of(obj, e.n)
		if e.shardState[i].Load() != shardLive {
			continue
		}
		e.shardMu[i].Lock()
		entries := append([]model.AggregatedReading(nil), e.shards[i].col.AggregatedUpTo(obj, t)...)
		e.shardMu[i].Unlock()
		if len(entries) == 0 {
			continue
		}
		st, err := e.shards[0].filter.RunPool(e.histPool, e.src, obj, entries, t)
		if err != nil {
			continue
		}
		tab.SetDistribution(obj, st.AnchorDistribution(e.shards[0].idx))
	}
	return tab
}

// Localize delegates to the owning shard; per-object summaries only touch
// that object's state.
func (e *Sharded) Localize(obj model.ObjectID) (Localization, bool) {
	e.healthMu.RLock()
	defer e.healthMu.RUnlock()
	i := shardmap.Of(obj, e.n)
	if e.shardState[i].Load() != shardLive {
		return Localization{}, false
	}
	e.shardMu[i].Lock()
	defer e.shardMu[i].Unlock()
	return e.shards[i].Localize(obj)
}

// Occupancy preprocesses every known object via the scatter path and
// accumulates room expectations in the same pinned order as the single
// engine (occupancyOn iterates sorted objects and anchors).
func (e *Sharded) Occupancy() []RoomOdds {
	e.healthMu.RLock()
	defer e.healthMu.RUnlock()
	tab := e.preprocess(infosToIDs(e.gatherInfos()))
	return occupancyOn(e.shards[0].idx, tab)
}

// OccupancyContext is Occupancy under a caller deadline and the quarantine
// partial-result contract: rooms are computed over the live shards' objects,
// and a degraded engine returns the typed QuarantineError alongside them.
func (e *Sharded) OccupancyContext(ctx context.Context) ([]RoomOdds, error) {
	e.healthMu.RLock()
	defer e.healthMu.RUnlock()
	tab, terr := e.preprocessCtx(ctx, infosToIDs(e.gatherInfos()))
	if tab == nil {
		tab = anchor.NewTable()
	}
	odds := occupancyOn(e.shards[0].idx, tab)
	if terr != nil {
		e.tel.deadlineExceeded.Inc()
		trace.From(ctx).SetDeadline()
	}
	return odds, joinPartial(terr, e.quarantineErr())
}

// ---------------------------------------------------------------------------
// Stats and observability.

// Stats merges per-shard counters with the router's ingest accounting.
// Every term is either an order-insensitive integer sum or router-owned, so
// the result matches the single engine's exactly.
func (e *Sharded) Stats() Stats {
	e.ingestMu.Lock()
	st := Stats{}
	st.Ingest = e.reorder.Drops()
	st.Ingest.Merge(e.extraDrops)
	st.ReadingsPending = e.reorder.PendingReadings()
	e.ingestMu.Unlock()
	for i, sh := range e.shards {
		e.shardMu[i].Lock()
		st.FiltersRun += sh.stats.FiltersRun
		st.FiltersResumed += sh.stats.FiltersResumed
		st.ReadingsIngested += sh.stats.ReadingsIngested
		st.Ingest.Merge(sh.col.Drops())
		e.shardMu[i].Unlock()
	}
	st.RangeQueries = int(e.rangeQ.Load())
	st.KNNQueries = int(e.knnQ.Load())
	st.ReadingsDropped = st.Ingest.Readings()
	return st
}

// CacheStats sums the shards' cache hit and miss counts.
func (e *Sharded) CacheStats() (hits, misses int) {
	for i, sh := range e.shards {
		e.shardMu[i].Lock()
		h, m := sh.cache.Stats()
		e.shardMu[i].Unlock()
		hits += h
		misses += m
	}
	return hits, misses
}

// KnownObjects merges the shards' sorted, disjoint object lists.
func (e *Sharded) KnownObjects() []model.ObjectID {
	per := make([][]model.ObjectID, e.n)
	for i, sh := range e.shards {
		e.shardMu[i].Lock()
		per[i] = sh.col.KnownObjects()
		e.shardMu[i].Unlock()
	}
	return kMerge(per, func(a, b model.ObjectID) bool { return a < b })
}

// ReaderHealth mirrors System.ReaderHealth from the router's monitor.
func (e *Sharded) ReaderHealth() []health.ReaderHealth {
	if e.monitor == nil {
		return nil
	}
	now := e.Now()
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	return e.monitor.Snapshot(now)
}

// HealthMonitorEnabled reports whether the router runs a health monitor.
func (e *Sharded) HealthMonitorEnabled() bool { return e.monitor != nil }

// SetParticleBudget applies the degraded-mode particle cap to every shard.
func (e *Sharded) SetParticleBudget(n int) {
	e.healthMu.Lock()
	for _, sh := range e.shards {
		sh.filter.SetParticleBudget(n)
	}
	budget := e.shards[0].filter.ParticleBudget()
	e.healthMu.Unlock()
	e.tel.particleBudget.Set(float64(budget))
}

// ParticleBudget returns the effective per-object particle count.
func (e *Sharded) ParticleBudget() int {
	e.healthMu.RLock()
	defer e.healthMu.RUnlock()
	return e.shards[0].filter.ParticleBudget()
}

// NoteOversizedBody accounts one oversized ingest delivery, like
// System.NoteOversizedBody.
func (e *Sharded) NoteOversizedBody() {
	e.ingestMu.Lock()
	e.extraDrops.OversizedBatches++
	e.ingestMu.Unlock()
}

// SyncMetrics refreshes the scrape-time gauges from the merged state,
// mirroring System.SyncMetrics.
func (e *Sharded) SyncMetrics() {
	e.metricsMu.Lock()
	defer e.metricsMu.Unlock()
	st := e.Stats()
	t := e.tel
	t.ingested.Set(uint64(st.ReadingsIngested))
	for kind, c := range t.dropped {
		c.Set(uint64(st.Ingest.Of(kind)))
	}
	t.rejectedBatches.Set(uint64(st.Ingest.LateBatches))
	t.oversizedBatches.Set(uint64(st.Ingest.OversizedBatches))
	t.gapSeconds.Set(uint64(st.Ingest.GapSeconds))
	t.pendingReadings.Set(float64(st.ReadingsPending))
	now := e.Now()
	t.streamNow.Set(float64(now))
	objects, entries := 0, 0
	for i, sh := range e.shards {
		e.shardMu[i].Lock()
		objects += sh.col.NumObjects()
		entries += sh.cache.Len()
		e.shardMu[i].Unlock()
	}
	t.objectsKnown.Set(float64(objects))
	t.cacheEntries.Set(float64(entries))
	e.ingestMu.Lock()
	t.pendingSeconds.Set(float64(e.reorder.PendingSeconds()))
	t.watermarkLag.Set(float64(e.reorder.Lag()))
	if e.wals != nil {
		t.walLastSeq.Set(float64(e.walSeq))
		segs := 0
		for _, l := range e.wals {
			if l != nil { // quarantined shards have no open log
				segs += l.Segments()
			}
		}
		t.walSegments.Set(float64(segs))
	}
	var snap []health.ReaderHealth
	if e.monitor != nil {
		snap = e.monitor.Snapshot(now)
	}
	e.ingestMu.Unlock()
	if snap != nil {
		if t.readerLabels == nil {
			t.readerLabels = make([]string, e.shards[0].dep.NumReaders())
			for i := range t.readerLabels {
				t.readerLabels[i] = strconv.Itoa(i)
			}
		}
		for _, rh := range snap {
			label := t.readerLabels[rh.Reader]
			t.readerState.With(label).Set(float64(rh.State))
			t.readerSilence.With(label).Set(float64(rh.SilenceSeconds))
		}
	}
}

// observeQuery mirrors System.observeQuery against the shared telemetry.
func (e *Sharded) observeQuery(kind, detail string, candidates int, start time.Time, tr *trace.Context) {
	elapsed := time.Since(start)
	t := e.tel
	h := t.queryRange
	if kind == "knn" {
		h = t.queryKNN
	}
	h.Observe(elapsed.Seconds())
	if thr := e.cfg.SlowQueryThreshold; thr > 0 && elapsed >= thr {
		t.slowQueries.Inc()
		t.Slow.Add(SlowQuery{
			Kind:        kind,
			Detail:      detail,
			SimTime:     int64(e.Now()),
			Candidates:  candidates,
			Micros:      elapsed.Microseconds(),
			TraceID:     tr.IDString(),
			ShardMicros: tr.DurationsOf("evaluate", e.n),
		})
		log.Printf("engine: slow %s query (%s, %d candidates): %v", kind, detail, candidates, elapsed)
	}
}

// ---------------------------------------------------------------------------
// Deterministic gather merges.

// kMerge merges k individually ordered streams into one ordered slice.
// Streams hold disjoint keys (objects live in exactly one shard), so ties
// across streams cannot occur and the merge is a total order; equal keys
// within one stream keep their stream order. With at most one non-empty
// stream the merge is free.
func kMerge[T any](per [][]T, lessFn func(a, b T) bool) []T {
	nonEmpty, total := -1, 0
	for i, p := range per {
		if len(p) > 0 {
			if nonEmpty >= 0 {
				nonEmpty = -2
			} else if nonEmpty == -1 {
				nonEmpty = i
			}
			total += len(p)
		}
	}
	if nonEmpty == -1 {
		return nil
	}
	if nonEmpty >= 0 {
		return per[nonEmpty]
	}
	out := make([]T, 0, total)
	heads := make([]int, len(per))
	for len(out) < total {
		best := -1
		for i, p := range per {
			if heads[i] >= len(p) {
				continue
			}
			if best < 0 || lessFn(p[heads[i]], per[best][heads[best]]) {
				best = i
			}
		}
		out = append(out, per[best][heads[best]])
		heads[best]++
	}
	return out
}

func eventLess(a, b model.Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Object < b.Object
}

func infoLess(a, b query.ObjectInfo) bool { return a.Object < b.Object }
