package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/health"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/shardmap"
	"repro/internal/sim/netsim"
)

// The cluster node is a drop-in engine: the HTTP layer must not care
// whether it fronts one process or a fleet.
var _ Engine = (*cluster.Node)(nil)

// clusterFixture is one node of a two-node test cluster with its server.
type clusterFixture struct {
	node *cluster.Node
	eng  *engine.System
	srv  *Server
	h    http.Handler
}

func clusterPair(t *testing.T, seed int64, tweak func(*cluster.Config)) (*netsim.Network, [2]*clusterFixture) {
	t.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := engine.DefaultConfig()
	cfg.Particle.Ns = 16
	cfg.Seed = seed
	cfg.SlowQueryThreshold = 0
	cfg.Ingest.Horizon = 0
	cfg.Health = health.Config{}

	nw := netsim.New(seed)
	var out [2]*clusterFixture
	for i, self := range []string{"node-0", "node-1"} {
		eng, err := engine.New(plan, dep, cfg)
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		ccfg := cluster.Config{
			Self:      self,
			Peers:     []string{"node-0", "node-1"},
			Transport: nw.Transport(self),
			ProbeBase: 24 * time.Hour,
			ProbeMax:  24 * time.Hour,
			Seed:      seed,
		}
		if tweak != nil {
			tweak(&ccfg)
		}
		node, err := cluster.New(eng, ccfg)
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", self, err)
		}
		srv := New(node, plan, dep)
		out[i] = &clusterFixture{node: node, eng: eng, srv: srv, h: srv.Handler()}
		nw.AddNode(self, node)
	}
	t.Cleanup(func() { out[0].node.Close(); out[1].node.Close() })
	return nw, out
}

func doJSON(t *testing.T, h http.Handler, method, target string, body []byte) (int, http.Header, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var m map[string]any
	if rec.Body.Len() > 0 && json.Unmarshal(rec.Body.Bytes(), &m) != nil {
		m = map[string]any{"_raw": rec.Body.String()}
	}
	return rec.Code, rec.Result().Header, m
}

func ingestBody(t *testing.T, sec model.Time, objs []model.ObjectID) []byte {
	t.Helper()
	raws := make([]model.RawReading, len(objs))
	for i, o := range objs {
		raws[i] = model.RawReading{Object: o, Reader: model.ReaderID(i % rfid.DefaultReaders), Time: sec}
	}
	b, err := json.Marshal(model.Batch{Time: sec, Readings: raws})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func ownedBy(bucket, count int) []model.ObjectID {
	out := make([]model.ObjectID, 0, count)
	for id := model.ObjectID(1); len(out) < count; id++ {
		if shardmap.Of(id, 2) == bucket {
			out = append(out, id)
		}
	}
	return out
}

// TestClusterStatusEndpoint checks the GET /cluster document: membership,
// self, and per-peer breaker state, live and after a kill.
func TestClusterStatusEndpoint(t *testing.T) {
	nw, fx := clusterPair(t, 21, nil)
	code, _, doc := doJSON(t, fx[0].h, http.MethodGet, "/cluster", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /cluster = %d", code)
	}
	if doc["self"] != "node-0" || doc["degraded"] != false {
		t.Errorf("cluster doc = %v, want self node-0 not degraded", doc)
	}

	nw.Kill("node-1")
	objs := append(ownedBy(0, 2), ownedBy(1, 2)...)
	code, _, resp := doJSON(t, fx[0].h, http.MethodPost, "/ingest", ingestBody(t, 1, objs))
	if code != http.StatusOK {
		t.Fatalf("POST /ingest = %d: %v", code, resp)
	}
	if resp["dropped"] != float64(2) || resp["reason"] != "unreachable" {
		t.Errorf("ingest response = %v, want 2 dropped unreachable", resp)
	}
	// DeadAfter defaults to 3 consecutive failures; two more seconds flip
	// the breaker to DEAD and the status document must say so.
	for sec := model.Time(2); sec <= 3; sec++ {
		doJSON(t, fx[0].h, http.MethodPost, "/ingest", ingestBody(t, sec, objs))
	}
	_, _, doc = doJSON(t, fx[0].h, http.MethodGet, "/cluster", nil)
	if doc["degraded"] != true {
		t.Errorf("cluster doc after kill = %v, want degraded", doc)
	}
}

// TestClusterReadyzDegraded checks that unreachable peers degrade /readyz
// (200 with the peer list) without failing it.
func TestClusterReadyzDegraded(t *testing.T) {
	nw, fx := clusterPair(t, 23, nil)
	nw.Kill("node-1")
	objs := ownedBy(1, 2)
	for sec := model.Time(1); sec <= 3; sec++ {
		doJSON(t, fx[0].h, http.MethodPost, "/ingest", ingestBody(t, sec, objs))
	}
	code, _, doc := doJSON(t, fx[0].h, http.MethodGet, "/readyz", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /readyz = %d, want 200 (degraded, not dead)", code)
	}
	if doc["status"] != "degraded" {
		t.Errorf("readyz status = %v, want degraded", doc["status"])
	}
	peers, _ := doc["degradedPeers"].([]any)
	if len(peers) != 1 || peers[0] != "node-1" {
		t.Errorf("readyz degradedPeers = %v, want [node-1]", doc["degradedPeers"])
	}

	// Queries still answer, marked partial with the same peer list.
	code, _, rng := doJSON(t, fx[0].h, http.MethodGet, "/range?x=0&y=0&w=100&h=100", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /range = %d", code)
	}
	if rng["partial"] != true {
		t.Errorf("range response = %v, want partial", rng)
	}
	if dp, _ := rng["degradedPeers"].([]any); len(dp) != 1 || dp[0] != "node-1" {
		t.Errorf("range degradedPeers = %v, want [node-1]", rng["degradedPeers"])
	}
}

// shedEvaluates turns every forwarded evaluate into an owner-side shed with
// a fixed Retry-After.
type shedEvaluates struct{ inner cluster.Transport }

func (s *shedEvaluates) Send(ctx context.Context, addr string, req *cluster.Request) (*cluster.Response, error) {
	if req.Op == cluster.OpEvaluate {
		return &cluster.Response{Shed: true, RetryAfterSeconds: 9}, nil
	}
	return s.inner.Send(ctx, addr, req)
}

// TestClusterShedRelays429 checks the bug fix of this PR's satellite: a
// forwarded query the owner sheds comes back 429 with the OWNER's
// Retry-After, not the forwarder's own estimate.
func TestClusterShedRelays429(t *testing.T) {
	_, fx := clusterPair(t, 25, func(c *cluster.Config) {
		if c.Self == "node-0" {
			c.Transport = &shedEvaluates{inner: c.Transport}
		}
	})
	objs := append(ownedBy(0, 2), ownedBy(1, 2)...)
	doJSON(t, fx[0].h, http.MethodPost, "/ingest", ingestBody(t, 1, objs))
	code, hdr, _ := doJSON(t, fx[0].h, http.MethodGet, "/range?x=0&y=0&w=100&h=100", nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("GET /range = %d, want 429", code)
	}
	if got := hdr.Get("Retry-After"); got != "9" {
		t.Errorf("Retry-After = %q, want the owner's 9", got)
	}
}

// TestClusterE2E is the two-node smoke over REAL HTTP (the make cluster-e2e
// target): two full servers on loopback listeners talk gob over
// /cluster/rpc via HTTPTransport; a batch ingested through node-0 is
// queryable identically through both nodes.
func TestClusterE2E(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := engine.DefaultConfig()
	cfg.Particle.Ns = 16
	cfg.Seed = 31
	cfg.SlowQueryThreshold = 0
	cfg.Ingest.Horizon = 0
	cfg.Health = health.Config{}

	// Bind both listeners first: the membership is their real host:port.
	var lns [2]net.Listener
	var addrs [2]string
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for i := range lns {
		eng, err := engine.New(plan, dep, cfg)
		if err != nil {
			t.Fatal(err)
		}
		node, err := cluster.New(eng, cluster.Config{
			Self:      addrs[i],
			Peers:     addrs[:],
			Transport: cluster.NewHTTPTransport(),
			Seed:      31,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: New(node, plan, dep).Handler()}
		go hs.Serve(lns[i])
		t.Cleanup(func() { hs.Shutdown(context.Background()); node.Close() })
	}

	post := func(addr string, body []byte) map[string]any {
		resp, err := http.Post("http://"+addr+"/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /ingest: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST /ingest = %d: %s", resp.StatusCode, b)
		}
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m)
		return m
	}
	get := func(addr, path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, b)
		}
		return string(b)
	}

	objs := make([]model.ObjectID, 8)
	for i := range objs {
		objs[i] = model.ObjectID(i + 1)
	}
	for sec := model.Time(1); sec <= 3; sec++ {
		m := post(addrs[0], ingestBody(t, sec, objs))
		if m["dropped"] != float64(0) {
			t.Fatalf("ingest t=%d dropped %v readings on a healthy cluster", sec, m["dropped"])
		}
	}

	// Any node answers any query, and all answers agree bit for bit.
	for _, path := range []string{
		"/range?x=0&y=0&w=100&h=100",
		fmt.Sprintf("/knn?x=10&y=10&k=%d", 3),
		"/occupancy",
		"/objects",
	} {
		if a, b := get(addrs[0], path), get(addrs[1], path); a != b {
			t.Errorf("GET %s diverges across nodes:\n  node-0: %s\n  node-1: %s", path, a, b)
		}
	}
	var doc map[string]any
	json.Unmarshal([]byte(get(addrs[0], "/cluster")), &doc)
	if doc["degraded"] != false {
		t.Errorf("/cluster = %v, want healthy", doc)
	}
}
