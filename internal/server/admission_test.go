package server

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestAwaitSlotPrefersFreeSlotOverFiredTimer is the white-box regression
// test for the shed race: when the wait timer has already fired AND a slot
// is free, a bare select picks at random and used to shed about half the
// time. awaitSlot must re-check the slot after the timeout and admit every
// single time.
func TestAwaitSlotPrefersFreeSlotOverFiredTimer(t *testing.T) {
	cfg := DefaultAdmissionConfig()
	cfg.MaxInFlight = 1
	a := newAdmission(cfg, obs.NewRegistry())
	for i := 0; i < 200; i++ {
		fired := make(chan time.Time, 1)
		fired <- time.Time{} // the timer has already fired
		if !a.awaitSlot(fired) {
			t.Fatalf("iteration %d: shed with a free slot and a fired timer", i)
		}
		<-a.slots // release for the next iteration
	}
}

// TestAwaitSlotTimesOutWhenFull pins the other side: with every slot taken,
// a fired timer must shed (awaitSlot returns false) rather than block.
func TestAwaitSlotTimesOutWhenFull(t *testing.T) {
	cfg := DefaultAdmissionConfig()
	cfg.MaxInFlight = 1
	a := newAdmission(cfg, obs.NewRegistry())
	a.slots <- struct{}{} // occupy the only slot
	fired := make(chan time.Time, 1)
	fired <- time.Time{}
	if a.awaitSlot(fired) {
		t.Fatal("admitted past a full slot table")
	}
}

// TestAdmissionLatencyExcludesQueueWait is the regression test for the
// Retry-After estimate: the EWMA must measure how long an admitted query
// holds its slot, starting at slot acquisition — not at arrival. A queued
// request that waits far longer than it runs must still record only its
// service time.
func TestAdmissionLatencyExcludesQueueWait(t *testing.T) {
	cfg := DefaultAdmissionConfig()
	cfg.MaxInFlight = 1
	cfg.MaxWait = 5 * time.Second
	a := newAdmission(cfg, obs.NewRegistry())

	a.slots <- struct{}{} // occupy the slot so the request queues
	const (
		queueWait = 150 * time.Millisecond
		service   = 20 * time.Millisecond
	)
	done := make(chan bool)
	go func() {
		release, ok := a.acquire()
		if !ok {
			done <- false
			return
		}
		time.Sleep(service)
		release()
		done <- true
	}()
	time.Sleep(queueWait)
	<-a.slots // free the slot; the queued request is admitted about now
	if !<-done {
		t.Fatal("queued request was shed")
	}
	got := time.Duration(a.latencyNs.Load())
	if got <= 0 {
		t.Fatal("no latency observed")
	}
	// The observation must be on the order of the service time; anywhere
	// near queueWait+service means the queue wait leaked into the clock.
	if got >= queueWait {
		t.Fatalf("EWMA latency %v includes the %v queue wait (service was %v)", got, queueWait, service)
	}
}

// TestRetryAfterSeconds pins the backoff math: EWMA latency times the
// backlog (held slots plus queued waiters) spread over the slot count,
// rounded up, floored at one second.
func TestRetryAfterSeconds(t *testing.T) {
	cfg := DefaultAdmissionConfig()
	cfg.MaxInFlight = 4
	a := newAdmission(cfg, obs.NewRegistry())

	// Idle controller, no history: the floor of one second applies.
	if got := a.retryAfterSeconds(); got != 1 {
		t.Errorf("idle retryAfterSeconds = %d, want 1", got)
	}

	// 2s EWMA, all four slots held, four queued: 2 * (4+4) / 4 = 4 seconds.
	a.latencyNs.Store(int64(2 * time.Second))
	for i := 0; i < 4; i++ {
		a.slots <- struct{}{}
	}
	a.queued.Add(4)
	if got := a.retryAfterSeconds(); got != 4 {
		t.Errorf("loaded retryAfterSeconds = %d, want 4", got)
	}
	if got := a.retryAfterHeader(); got != "4" {
		t.Errorf("retryAfterHeader = %q, want \"4\"", got)
	}
}
