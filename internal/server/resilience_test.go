package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rfid"
	"repro/internal/sim"
)

// resilientServer builds a server with admission control on, returning the
// server, its engine, and a warmed-up simulator.
func resilientServer(t *testing.T, cfg Config) (*Server, *engine.System, *sim.Simulator) {
	t.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	ecfg := engine.DefaultConfig()
	ecfg.Seed = 8
	sys := engine.MustNew(plan, dep, ecfg)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 10
	world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 99)
	srv := NewWith(sys, plan, dep, cfg)
	for i := 0; i < 40; i++ {
		tm, raws := world.Step()
		if err := srv.IngestDirect(tm, raws); err != nil {
			t.Fatal(err)
		}
	}
	return srv, sys, world
}

// TestOverloadShedsWith429: when every admission slot is held and the queue
// is full, queries are shed with 429 plus a Retry-After estimate; sustained
// shedding trips degraded mode (reduced particle budget); freeing a slot
// admits queries again, and an admitted query with a generous deadline
// completes fully (no partial marker).
func TestOverloadShedsWith429(t *testing.T) {
	adm := AdmissionConfig{
		MaxInFlight:       1,
		MaxQueue:          0, // no waiting: a busy slot sheds immediately
		MaxWait:           time.Millisecond,
		DegradedParticles: 16,
		DegradeAfter:      2,
		RestoreAfter:      time.Hour, // keep degraded mode latched for the test
	}
	srv, sys, _ := resilientServer(t, Config{Admission: adm})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the only slot, as a long-running query would.
	srv.adm.slots <- struct{}{}

	full := sys.ParticleBudget()
	for i := 0; i < adm.DegradeAfter; i++ {
		resp, err := ts.Client().Get(ts.URL + "/range?x=0&y=0&w=10&h=10")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overloaded query status %d, want 429", resp.StatusCode)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || ra < 1 {
			t.Fatalf("Retry-After %q, want integer >= 1", resp.Header.Get("Retry-After"))
		}
	}
	// The next shed observes the accumulated count and enters degraded mode.
	resp, err := ts.Client().Get(ts.URL + "/knn?x=1&y=1&k=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := sys.ParticleBudget(); got != adm.DegradedParticles {
		t.Fatalf("particle budget %d after sustained shedding, want degraded %d (full %d)",
			got, adm.DegradedParticles, full)
	}

	// Free the slot: queries are admitted again, and one with a generous
	// deadline completes without the partial marker.
	<-srv.adm.slots
	resp, err = ts.Client().Get(ts.URL + "/range?x=0&y=0&w=40&h=30&deadline_ms=5000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admitted query status %d, want 200", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if _, partial := out["partial"]; partial {
		t.Fatal("admitted query with a generous deadline returned a partial result")
	}
}

// TestDegradedModeHysteresis drives the controller's clock directly: degraded
// mode enters only after DegradeAfter sheds inside the window, stays latched
// while sheds keep arriving, and leaves only after a full RestoreAfter of
// calm. Sheds further apart than the window never accumulate.
func TestDegradedModeHysteresis(t *testing.T) {
	cfg := AdmissionConfig{
		MaxInFlight:       1,
		DegradedParticles: 8,
		DegradeAfter:      2,
		RestoreAfter:      10 * time.Second,
	}
	a := newAdmission(cfg, obs.NewRegistry())
	base := time.Unix(1000, 0)

	a.noteShed(base)
	if deg, _ := a.degradeDecision(base); deg {
		t.Fatal("degraded after a single shed")
	}
	a.noteShed(base.Add(time.Second))
	deg, changed := a.degradeDecision(base.Add(time.Second))
	if !deg || !changed {
		t.Fatalf("deg=%v changed=%v after %d sheds, want entry", deg, changed, cfg.DegradeAfter)
	}
	// Mid-window: still degraded, no flapping.
	if deg, changed = a.degradeDecision(base.Add(5 * time.Second)); !deg || changed {
		t.Fatalf("deg=%v changed=%v mid-window, want latched", deg, changed)
	}
	// A shed inside the window extends it.
	a.noteShed(base.Add(8 * time.Second))
	if deg, _ = a.degradeDecision(base.Add(12 * time.Second)); !deg {
		t.Fatal("left degraded mode before a full calm window")
	}
	// Full RestoreAfter of calm: restore.
	deg, changed = a.degradeDecision(base.Add(18*time.Second + time.Millisecond))
	if deg || !changed {
		t.Fatalf("deg=%v changed=%v after calm window, want restore", deg, changed)
	}
	// Two sheds separated by more than the window start fresh counts.
	a.noteShed(base.Add(30 * time.Second))
	a.noteShed(base.Add(50 * time.Second))
	if deg, _ = a.degradeDecision(base.Add(50 * time.Second)); deg {
		t.Fatal("sheds outside the window accumulated toward degraded mode")
	}
}

// TestIngestBodyCap413: a POST /ingest body over the configured cap is
// refused with 413 and lands in the drop accounting as an oversized batch.
func TestIngestBodyCap413(t *testing.T) {
	srv, sys, world := resilientServer(t, Config{MaxIngestBytes: 512})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tm, _ := world.Step()
	big := make([]model.RawReading, 512)
	for i := range big {
		big[i] = model.RawReading{Object: model.ObjectID(i), Reader: 0, Time: tm}
	}
	body, err := json.Marshal(ingestRequest{Time: tm, Readings: big})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d, want 413", resp.StatusCode)
	}
	if got := sys.Stats().Ingest.OversizedBatches; got != 1 {
		t.Fatalf("OversizedBatches = %d, want 1", got)
	}

	// A normal-size delivery still goes through.
	tm2, raws := world.Step()
	small, _ := json.Marshal(ingestRequest{Time: tm2, Readings: raws[:min(2, len(raws))]})
	resp, err = ts.Client().Post(ts.URL+"/ingest", "application/json", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("normal body status %d, want 200", resp.StatusCode)
	}
}

// TestReadersEndpoint: GET /readers serves the liveness snapshot with one
// record per reader.
func TestReadersEndpoint(t *testing.T) {
	srv, _, _ := resilientServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out struct {
		Enabled bool             `json:"enabled"`
		Now     model.Time       `json:"now"`
		Readers []map[string]any `json:"readers"`
	}
	resp, err := ts.Client().Get(ts.URL + "/readers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Enabled {
		t.Fatal("health monitoring not enabled under the default config")
	}
	if len(out.Readers) != rfid.DefaultReaders {
		t.Fatalf("%d reader records, want %d", len(out.Readers), rfid.DefaultReaders)
	}
	for _, rec := range out.Readers {
		if rec["state"] != "live" {
			t.Fatalf("reader %v state %v on a clean stream, want live", rec["reader"], rec["state"])
		}
	}
}

// TestGracefulDrainUnderLoad: with concurrent ingest and query traffic, a
// drain (readyz off, listener closed, server closed) must lose no acked
// delivery — every reading acknowledged with 200 is accounted as ingested,
// dropped, or pending — and must leak no goroutines.
func TestGracefulDrainUnderLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, sys, world := resilientServer(t, Config{Admission: DefaultAdmissionConfig()})
	ts := httptest.NewServer(srv.Handler())

	var (
		wg            sync.WaitGroup
		stopQueries   atomic.Bool
		ackedReadings atomic.Int64
	)
	// Query load: several clients hammering range/knn until the drain ends.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for !stopQueries.Load() {
				url := ts.URL + "/range?x=0&y=0&w=40&h=30&deadline_ms=50"
				if i%2 == 1 {
					url = ts.URL + "/knn?x=5&y=5&k=3"
				}
				resp, err := ts.Client().Get(url)
				if err != nil {
					continue // connection refused once the listener closes
				}
				resp.Body.Close()
			}
		}(i)
	}
	// Ingest load: one gateway streaming seconds over HTTP, counting the
	// readings the server acknowledged.
	ingestDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(ingestDone)
		for i := 0; i < 60; i++ {
			tm, raws := world.Step()
			body, err := json.Marshal(ingestRequest{Time: tm, Readings: raws})
			if err != nil {
				return
			}
			resp, err := ts.Client().Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			if resp.StatusCode == http.StatusOK {
				ackedReadings.Add(int64(len(raws)))
			}
			resp.Body.Close()
		}
	}()
	<-ingestDone // all acks recorded before the drain starts

	// Drain: readiness off first so load balancers route away...
	srv.SetReady(false)
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz status %d while draining, want 503", resp.StatusCode)
	}
	// ...then the listener closes, waiting out in-flight requests (queries
	// are still arriving concurrently here), then the engine closes.
	ts.Close()
	stopQueries.Store(true)
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st := sys.Stats()
	accounted := st.ReadingsIngested + st.ReadingsDropped + st.ReadingsPending
	// IngestDirect warmup offered readings too; every acked HTTP reading must
	// be inside the accounted total (accounting is cumulative and monotone).
	if int64(accounted) < ackedReadings.Load() {
		t.Fatalf("accounted readings %d < acked over HTTP %d: an acknowledged delivery was lost",
			accounted, ackedReadings.Load())
	}
	t.Logf("acked %d readings over HTTP; accounted %d (ingested=%d dropped=%d pending=%d)",
		ackedReadings.Load(), accounted, st.ReadingsIngested, st.ReadingsDropped, st.ReadingsPending)

	// No goroutine leak: everything spawned for the load and the server
	// itself winds down to the baseline.
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d alive, baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// TestDeadlineParamValidation: deadline_ms must be a positive integer.
func TestDeadlineParamValidation(t *testing.T) {
	srv, _, _ := resilientServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, bad := range []string{"0", "-5", "soon"} {
		resp, err := ts.Client().Get(ts.URL + "/range?x=0&y=0&w=10&h=10&deadline_ms=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("deadline_ms=%s status %d, want 400", bad, resp.StatusCode)
		}
	}
}
