package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/obs/trace"
	"repro/internal/rfid"
	"repro/internal/sim"
)

// shardedTestServer builds a server over a four-shard engine with tracing at
// sample rate 1, streams 60 seconds of simulated traffic through POST
// /ingest, and touches both query endpoints so every per-shard series has
// observations.
func shardedTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := engine.DefaultConfig()
	cfg.Shards = 4
	sys := engine.MustNewSharded(plan, dep, cfg)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 120
	tc.DwellMin, tc.DwellMax = 2, 8
	world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 99)
	srv := NewWith(sys, plan, dep, Config{Trace: trace.Config{Sample: 1, Seed: 4}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	client := ts.Client()
	for i := 0; i < 60; i++ {
		tm, raws := world.Step()
		body, err := json.Marshal(ingestRequest{Time: tm, Readings: raws})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	var ignore any
	if code := getJSON(t, ts, "/range?x=1&y=2&w=140&h=32", &ignore); code != http.StatusOK {
		t.Fatalf("range status %d", code)
	}
	if code := getJSON(t, ts, "/knn?x=35&y=12&k=5", &ignore); code != http.StatusOK {
		t.Fatalf("knn status %d", code)
	}
	return ts
}

// TestShardedMetricsLabeledSeries checks the per-shard labeled families and
// the runtime families through the strict exposition lint: every shard must
// have step-time and queue-depth samples, the reorder-lag histogram is
// router-scoped (no shard label), and the Go runtime block is present and
// plausible.
func TestShardedMetricsLabeledSeries(t *testing.T) {
	ts := shardedTestServer(t)
	fams := scrape(t, ts, ts.URL)

	for shard := 0; shard < 4; shard++ {
		lbl := map[string]string{"shard": strconv.Itoa(shard)}
		if v := sampleValue(fams, "repro_shard_step_seconds", "repro_shard_step_seconds_count", lbl); v <= 0 {
			t.Errorf("shard %d: step histogram count = %v, want > 0", shard, v)
		}
		if v := sampleValue(fams, "repro_shard_queue_depth", "repro_shard_queue_depth", lbl); v < 0 {
			t.Errorf("shard %d: queue-depth gauge missing", shard)
		}
	}
	// Evaluate fills only for shards that held query candidates; with 120
	// objects a whole-floor range query covers all of them.
	var evalCount float64
	for shard := 0; shard < 4; shard++ {
		lbl := map[string]string{"shard": strconv.Itoa(shard)}
		if v := sampleValue(fams, "repro_shard_evaluate_seconds", "repro_shard_evaluate_seconds_count", lbl); v > 0 {
			evalCount += v
		}
	}
	if evalCount == 0 {
		t.Error("no shard recorded an evaluate histogram observation")
	}
	if v := sampleValue(fams, "repro_ingest_reorder_lag_seconds", "repro_ingest_reorder_lag_seconds_count", nil); v <= 0 {
		t.Errorf("reorder-lag histogram count = %v, want > 0", v)
	}
	for _, s := range fams["repro_ingest_reorder_lag_seconds"].Samples {
		if _, ok := s.Labels["shard"]; ok {
			t.Error("reorder lag is router-scoped and must not carry a shard label")
		}
	}

	// Runtime block, collected lazily at scrape time.
	if v := sampleValue(fams, "repro_go_goroutines", "repro_go_goroutines", nil); v <= 0 {
		t.Errorf("repro_go_goroutines = %v, want > 0", v)
	}
	if v := sampleValue(fams, "repro_go_heap_inuse_bytes", "repro_go_heap_inuse_bytes", nil); v <= 0 {
		t.Errorf("repro_go_heap_inuse_bytes = %v, want > 0", v)
	}
	if fams["repro_go_gc_pause_seconds"] == nil {
		t.Error("repro_go_gc_pause_seconds family missing")
	}
	if v := sampleValue(fams, "repro_build_info", "repro_build_info", nil); v != 1 {
		t.Errorf("repro_build_info = %v, want 1", v)
	}
	if f := fams["repro_build_info"]; f != nil {
		if len(f.Samples) != 1 || f.Samples[0].Labels["goversion"] == "" {
			t.Errorf("repro_build_info labels = %v, want a goversion label", f.Samples)
		}
	}
}

// TestTracesEndpoint exercises GET /debug/traces over the sharded server:
// the JSON document must hold a kNN trace whose spans cover admission and
// encode at the router plus one evaluate span per shard, and ?format=chrome
// must render the same ring as a valid trace-event document.
func TestTracesEndpoint(t *testing.T) {
	ts := shardedTestServer(t)

	var doc struct {
		Capacity int          `json:"capacity"`
		Total    int          `json:"total"`
		Sample   float64      `json:"sample"`
		Traces   []trace.Done `json:"traces"`
	}
	if code := getJSON(t, ts, "/debug/traces", &doc); code != http.StatusOK {
		t.Fatalf("/debug/traces status %d", code)
	}
	if doc.Capacity <= 0 || doc.Total == 0 || doc.Sample != 1 {
		t.Fatalf("trace ring stats: capacity=%d total=%d sample=%v", doc.Capacity, doc.Total, doc.Sample)
	}
	var knn *trace.Done
	for i := range doc.Traces {
		if doc.Traces[i].Kind == "knn" {
			knn = &doc.Traces[i]
		}
	}
	if knn == nil {
		t.Fatalf("no knn trace in ring of %d traces", len(doc.Traces))
	}
	if len(knn.TraceID) != 16 {
		t.Errorf("knn traceId = %q, want 16 hex digits", knn.TraceID)
	}
	byName := map[string]map[int]bool{}
	for _, sp := range knn.Spans {
		if byName[sp.Name] == nil {
			byName[sp.Name] = map[int]bool{}
		}
		byName[sp.Name][sp.Shard] = true
	}
	for _, name := range []string{"admission", "gather", "merge", "encode"} {
		if !byName[name][trace.RouterShard] {
			t.Errorf("knn trace: no router %s span (got %v)", name, byName[name])
		}
	}
	for shard := 0; shard < 4; shard++ {
		if !byName["evaluate"][shard] {
			t.Errorf("knn trace: evaluate span missing for shard %d (got %v)", shard, byName["evaluate"])
		}
	}

	// Chrome export of the same ring.
	resp, err := ts.Client().Get(ts.URL + "/debug/traces?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome format status %d", resp.StatusCode)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatalf("chrome format does not decode: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome format: empty traceEvents")
	}
	wantFrag := fmt.Sprintf("knn %s", knn.TraceID)
	var found bool
	for _, ev := range chrome.TraceEvents {
		if args, ok := ev["args"].(map[string]any); ok && args["name"] == wantFrag {
			found = true
		}
	}
	if !found {
		t.Errorf("chrome format: no process_name metadata for %q", wantFrag)
	}
}

// TestTracesDisabled pins the 404 contract when tracing is turned off with a
// negative sample rate.
func TestTracesDisabled(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	sys := engine.MustNew(plan, dep, engine.DefaultConfig())
	srv := NewWith(sys, plan, dep, Config{Trace: trace.Config{Sample: -1}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	var ignore any
	if code := getJSON(t, ts, "/debug/traces", &ignore); code != http.StatusNotFound {
		t.Fatalf("/debug/traces with tracing disabled: status %d, want 404", code)
	}
}
