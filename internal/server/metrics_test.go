package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/obs"
	"repro/internal/rfid"
)

// newTestServerWith builds an (unwarmed) test server with an explicit
// handler configuration.
func newTestServerWith(t *testing.T, cfg HandlerConfig) *httptest.Server {
	t.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	sys := engine.MustNew(plan, dep, engine.DefaultConfig())
	ts := httptest.NewServer(New(sys, plan, dep).HandlerWith(cfg))
	t.Cleanup(ts.Close)
	return ts
}

// scrape fetches /metrics and returns the strictly-parsed families; any
// grammar or histogram-invariant violation fails the test.
func scrape(t *testing.T, ts *httptest.Server, url string) map[string]*obs.Family {
	t.Helper()
	resp, err := ts.Client().Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, obs.ContentType)
	}
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics does not lint: %v", err)
	}
	return fams
}

// sampleValue finds one sample by name and label subset; -1 when absent.
func sampleValue(fams map[string]*obs.Family, fam, sample string, labels map[string]string) float64 {
	f := fams[fam]
	if f == nil {
		return -1
	}
outer:
	for _, s := range f.Samples {
		if s.Name != sample {
			continue
		}
		for k, v := range labels {
			if s.Labels[k] != v {
				continue outer
			}
		}
		return s.Value
	}
	return -1
}

// TestMetricsEndpoint scrapes a warmed-up server after traffic on several
// endpoints and checks the exposition lints strictly and covers every layer.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := testServer(t)

	// Touch the query endpoints so their metrics exist.
	var ignore any
	if code := getJSON(t, ts, "/range?x=1&y=2&w=140&h=32", &ignore); code != http.StatusOK {
		t.Fatalf("range status %d", code)
	}
	if code := getJSON(t, ts, "/knn?x=35&y=12&k=3", &ignore); code != http.StatusOK {
		t.Fatalf("knn status %d", code)
	}
	getJSON(t, ts, "/localize?object=999999", &ignore) // a 404 to record

	fams := scrape(t, ts, ts.URL)

	// Every layer must be represented.
	for _, name := range []string{
		"repro_filter_stage_seconds",
		"repro_filter_runs_total",
		"repro_query_seconds",
		"repro_cache_events_total",
		"repro_ingest_readings_ingested_total",
		"repro_http_requests_total",
		"repro_http_request_seconds",
		"repro_stream_now_seconds",
		"repro_objects_known",
	} {
		if fams[name] == nil {
			t.Errorf("family %s missing from /metrics", name)
		}
	}

	if v := sampleValue(fams, "repro_ingest_readings_ingested_total",
		"repro_ingest_readings_ingested_total", nil); v <= 0 {
		t.Errorf("ingested total = %v after 120 streamed seconds", v)
	}
	if v := sampleValue(fams, "repro_stream_now_seconds",
		"repro_stream_now_seconds", nil); v != 120 {
		t.Errorf("stream now = %v, want 120", v)
	}
	// Per-endpoint accounting: the ingest route saw 120 POSTs with 200s,
	// and the localize miss above was recorded with its 404.
	if v := sampleValue(fams, "repro_http_requests_total", "repro_http_requests_total",
		map[string]string{"path": "/ingest", "code": "200"}); v != 120 {
		t.Errorf(`requests{path="/ingest",code="200"} = %v, want 120`, v)
	}
	if v := sampleValue(fams, "repro_http_requests_total", "repro_http_requests_total",
		map[string]string{"path": "/localize", "code": "404"}); v != 1 {
		t.Errorf(`requests{path="/localize",code="404"} = %v, want 1`, v)
	}
	if v := sampleValue(fams, "repro_http_request_seconds", "repro_http_request_seconds_count",
		map[string]string{"path": "/range"}); v < 1 {
		t.Errorf(`request_seconds_count{path="/range"} = %v, want >= 1`, v)
	}
	// All four filter stages observed.
	for _, st := range []string{"predict", "reweight", "resample", "snap"} {
		if v := sampleValue(fams, "repro_filter_stage_seconds", "repro_filter_stage_seconds_count",
			map[string]string{"stage": st}); v <= 0 {
			t.Errorf("filter stage %q count = %v", st, v)
		}
	}
}

// TestStatsAgreesWithMetrics rejects a late delivery, then checks /stats and
// /metrics report the same rejection count — they are one counter now.
func TestStatsAgreesWithMetrics(t *testing.T) {
	ts, _ := testServer(t)

	// The stream is at second 120: second 5 is a late batch, refused whole.
	resp, err := ts.Client().Post(ts.URL+"/ingest", "application/json",
		strings.NewReader(`{"time": 5, "readings": []}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("late delivery status %d, want 409", resp.StatusCode)
	}

	var st struct {
		IngestRejected int `json:"ingestRejected"`
	}
	if code := getJSON(t, ts, "/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.IngestRejected != 1 {
		t.Fatalf("/stats ingestRejected = %d, want 1", st.IngestRejected)
	}
	fams := scrape(t, ts, ts.URL)
	if v := sampleValue(fams, "repro_ingest_batches_rejected_total",
		"repro_ingest_batches_rejected_total", nil); v != float64(st.IngestRejected) {
		t.Errorf("metrics rejected = %v, /stats says %d", v, st.IngestRejected)
	}
	// The 409 itself is visible in the endpoint accounting.
	if v := sampleValue(fams, "repro_http_requests_total", "repro_http_requests_total",
		map[string]string{"path": "/ingest", "code": "409"}); v != 1 {
		t.Errorf(`requests{path="/ingest",code="409"} = %v, want 1`, v)
	}
}

// TestFilterTraceEndpoint checks /debug/filtertrace serves the ring as JSON
// with traces from real filter runs.
func TestFilterTraceEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	var ignore any
	if code := getJSON(t, ts, "/range?x=1&y=2&w=140&h=32", &ignore); code != http.StatusOK {
		t.Fatalf("range status %d", code)
	}

	var out struct {
		Capacity int               `json:"capacity"`
		Total    uint64            `json:"total"`
		Traces   []obs.FilterTrace `json:"traces"`
	}
	if code := getJSON(t, ts, "/debug/filtertrace", &out); code != http.StatusOK {
		t.Fatalf("filtertrace status %d", code)
	}
	if out.Capacity != obs.DefaultRingSize {
		t.Errorf("capacity = %d, want default %d", out.Capacity, obs.DefaultRingSize)
	}
	if len(out.Traces) == 0 || out.Total == 0 {
		t.Fatal("no traces after a range query")
	}
	for _, tr := range out.Traces {
		if tr.SimTo < tr.SimFrom || tr.Particles <= 0 {
			t.Errorf("malformed trace %+v", tr)
		}
	}
}

// TestSlowQueriesEndpoint checks /debug/slowqueries decodes (empty at the
// default threshold).
func TestSlowQueriesEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	var out struct {
		Capacity int   `json:"capacity"`
		Queries  []any `json:"queries"`
	}
	if code := getJSON(t, ts, "/debug/slowqueries", &out); code != http.StatusOK {
		t.Fatalf("slowqueries status %d", code)
	}
	if out.Capacity <= 0 {
		t.Errorf("capacity = %d", out.Capacity)
	}
	if out.Queries == nil {
		t.Error("queries encoded as null, want []")
	}
}

// TestPProfGating checks pprof is absent by default and mounted with
// HandlerConfig.EnablePProf.
func TestPProfGating(t *testing.T) {
	ts, _ := testServer(t) // default Handler: pprof off
	resp, err := ts.Client().Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
	}

	tsOn := newTestServerWith(t, HandlerConfig{EnablePProf: true})
	resp, err = tsOn.Client().Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status %d, want 200", resp.StatusCode)
	}
}
