// Package server exposes the indoor spatial query system over HTTP with a
// small JSON API, so reader gateways can stream raw readings in and
// applications can query object locations out. Standard library only.
//
// Endpoints:
//
//	POST /ingest        {"time": 123, "readings": [{"Object":1,"Reader":2,"Time":123}, ...]}
//	GET  /range?x=&y=&w=&h=[&at=]   probabilistic range query
//	GET  /knn?x=&y=&k=[&at=]        probabilistic kNN query
//	GET  /localize?object=          localization summary for one object
//	GET  /occupancy                 expected objects per room
//	GET  /objects                   known object IDs
//	GET  /stats                     cumulative work counters
//	GET  /plan                      the floor plan as JSON
//	GET  /snapshot.svg              rendered floor plan + distributions
//	GET  /metrics                   Prometheus text-format telemetry
//	GET  /debug/filtertrace         recent particle-filter runs with stage timings
//	GET  /debug/slowqueries         recent queries over the slow threshold
//	GET  /debug/traces              tail-sampled request traces (?format=chrome)
//	GET  /debug/pprof/              net/http/pprof (opt-in via HandlerConfig)
//
// The single-shard engine.System is not safe for concurrent use; the server
// serializes access with a mutex, which matches the one-writer reality of a
// reading stream. An engine that synchronizes internally (engine.Sharded)
// reports it via SelfSynchronizing and the server skips its lock, letting
// ingestion and queries overlap. Handlers compute their answer under the
// lock and encode it to the client after releasing it, so one slow reader
// cannot head-of-line block the ingestion path.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/anchor"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/health"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/rfid"
	"repro/internal/viz"
	"repro/internal/walkgraph"
)

// Engine is the query-evaluation surface the server drives: implemented by
// the single-shard *engine.System and the sharded *engine.Sharded.
type Engine interface {
	Ingest(t model.Time, raws []model.RawReading) error
	IngestContext(ctx context.Context, t model.Time, raws []model.RawReading) error
	Now() model.Time
	KnownObjects() []model.ObjectID
	RangeQuery(window geom.Rect) model.ResultSet
	RangeQueryAt(window geom.Rect, t model.Time) model.ResultSet
	RangeQueryContext(ctx context.Context, window geom.Rect) (model.ResultSet, error)
	KNNQuery(q geom.Point, k int) model.ResultSet
	KNNQueryAt(q geom.Point, k int, t model.Time) model.ResultSet
	KNNQueryContext(ctx context.Context, q geom.Point, k int) (model.ResultSet, error)
	Localize(obj model.ObjectID) (engine.Localization, bool)
	Occupancy() []engine.RoomOdds
	OccupancyContext(ctx context.Context) ([]engine.RoomOdds, error)
	DegradedShards() []int
	Preprocess(candidates []model.ObjectID) *anchor.Table
	Stats() engine.Stats
	CacheStats() (hits, misses int)
	Graph() *walkgraph.Graph
	AnchorIndex() *anchor.Index
	Telemetry() *engine.Telemetry
	SyncMetrics()
	SetParticleBudget(n int)
	NoteOversizedBody()
	HealthMonitorEnabled() bool
	ReaderHealth() []health.ReaderHealth
	WALError() error
	Recovery() engine.RecoveryInfo
	Close() error
}

// selfSynchronizing is implemented by engines that do their own locking;
// the server then skips its serialization mutex.
type selfSynchronizing interface {
	SelfSynchronizing() bool
}

// clusterNode is the optional surface of an Engine that is a cluster node
// (*cluster.Node): the server mounts its peer RPC endpoint and status
// document, folds its peer health into /readyz, and hands it the request
// tracer so forwarded traces stitch.
type clusterNode interface {
	RPCHandler() http.Handler
	ClusterStatus() cluster.Status
	DegradedPeers() []string
	SetTracer(t *trace.Tracer)
}

// Server wraps an Engine with an HTTP API.
type Server struct {
	mu sync.Mutex
	// noLock skips the mutex for engines that synchronize internally.
	noLock bool
	sys    Engine
	plan   *floorplan.Plan
	dep    *rfid.Deployment

	// adm is the query admission controller (nil: admission disabled);
	// maxIngestBytes caps POST /ingest bodies.
	adm            *admission
	maxIngestBytes int64

	// ready gates /readyz: set once recovery is complete and the server is
	// accepting traffic, cleared when shutdown begins so load balancers
	// drain before the listener closes.
	ready atomic.Bool

	// tracer tail-samples request traces into the /debug/traces ring; nil
	// when tracing is disabled (Config.Trace.Sample < 0).
	tracer *trace.Tracer

	// clu is non-nil when the engine is a cluster node; see clusterNode.
	clu clusterNode

	// Per-endpoint telemetry, registered into the system's registry so one
	// /metrics scrape covers every layer. Encode errors and panics are
	// labeled by route pattern: the statusWriter pins the path before the
	// ResponseWriter is handed off, so even streamed handlers attribute.
	httpRequests *obs.CounterVec
	httpLatency  *obs.HistogramVec
	encodeErrors *obs.CounterVec
	httpPanics   *obs.CounterVec

	// Degraded-mode telemetry (registered only with admission control on).
	degradedMode        *obs.Gauge
	degradedTransitions *obs.Counter
}

// Config selects the server's resilience posture.
type Config struct {
	// Admission bounds concurrent queries and enables degraded mode under
	// sustained overload. The zero value disables admission control.
	Admission AdmissionConfig
	// MaxIngestBytes caps the POST /ingest request body; oversized bodies
	// get 413 and are counted in the ingest drop accounting. 0 selects
	// DefaultMaxIngestBytes; negative disables the cap.
	MaxIngestBytes int64
	// Trace configures request tracing. The zero value keeps only
	// remarkable traces (slow, deadline-exceeded, shed, errored); a
	// negative Sample disables tracing entirely.
	Trace trace.Config
}

// DefaultMaxIngestBytes bounds one ingest delivery. A reading encodes to a
// few dozen JSON bytes, so 8 MiB comfortably fits ~100k readings per batch —
// far past any one-second gateway delivery — while bounding the bytes a
// single request can make the decoder buffer.
const DefaultMaxIngestBytes = 8 << 20

// New builds a Server around an assembled system with the default
// configuration (no admission control, default ingest body cap). The server
// starts ready: engine.Open completes recovery before returning, so by the
// time a Server exists the system can take traffic. SetReady(false) begins a
// drain.
func New(sys Engine, plan *floorplan.Plan, dep *rfid.Deployment) *Server {
	return NewWith(sys, plan, dep, Config{})
}

// NewWith builds a Server with an explicit resilience configuration.
func NewWith(sys Engine, plan *floorplan.Plan, dep *rfid.Deployment, cfg Config) *Server {
	r := sys.Telemetry().Registry()
	maxBytes := cfg.MaxIngestBytes
	if maxBytes == 0 {
		maxBytes = DefaultMaxIngestBytes
	}
	s := &Server{
		sys:            sys,
		plan:           plan,
		dep:            dep,
		adm:            newAdmission(cfg.Admission, r),
		maxIngestBytes: maxBytes,
		tracer:         trace.New(cfg.Trace),
		httpRequests: r.CounterVec("repro_http_requests_total",
			"HTTP requests served, by route pattern and status code.", "path", "code"),
		httpLatency: r.HistogramVec("repro_http_request_seconds",
			"HTTP request wall time, by route pattern.", nil, "path"),
		encodeErrors: r.CounterVec("repro_http_encode_errors_total",
			"JSON responses whose encoding failed mid-write (client gone or marshal error), by route pattern.", "path"),
		httpPanics: r.CounterVec("repro_http_panics_total",
			"Handler panics converted to 500 responses by the recovery middleware, by route pattern.", "path"),
	}
	obs.RegisterRuntimeMetrics(r)
	if s.adm != nil {
		s.degradedMode = r.Gauge("repro_degraded_mode",
			"1 while the server runs with a reduced particle budget under overload.")
		s.degradedTransitions = r.Counter("repro_degraded_transitions_total",
			"Degraded-mode enter/leave transitions.")
	}
	if ss, ok := sys.(selfSynchronizing); ok && ss.SelfSynchronizing() {
		s.noLock = true
	}
	if cn, ok := sys.(clusterNode); ok {
		s.clu = cn
		cn.SetTracer(s.tracer)
	}
	s.ready.Store(true)
	return s
}

// SetReady flips the /readyz answer. Flip it false at the start of a
// graceful shutdown so load balancers stop routing before the listener
// closes.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// lock and unlock serialize engine access, unless the engine synchronizes
// itself (noLock): then ingest and queries run concurrently and the engine's
// internal sharding is what provides the parallelism.
func (s *Server) lock() {
	if !s.noLock {
		s.mu.Lock()
	}
}

func (s *Server) unlock() {
	if !s.noLock {
		s.mu.Unlock()
	}
}

// Close drains the server for shutdown: /readyz goes unready, then the
// engine's durability layer flushes, snapshots, and closes under the
// serialization lock. Safe to call once in-flight requests finished (i.e.
// after http.Server.Shutdown returned).
func (s *Server) Close() error {
	s.ready.Store(false)
	s.lock()
	defer s.unlock()
	return s.sys.Close()
}

// IngestDirect feeds one delivery of readings bypassing HTTP (used by the
// demo simulator); it takes the same lock as the handlers. Rejections are
// logged and land in the same Stats().Ingest.LateBatches counter that backs
// the HTTP 409 path, so /stats and /metrics agree no matter the entry point.
func (s *Server) IngestDirect(t model.Time, raws []model.RawReading) error {
	s.lock()
	defer s.unlock()
	err := s.sys.Ingest(t, raws)
	var ie *ingest.Error
	if errors.As(err, &ie) && ie.Rejected {
		log.Printf("ingest: direct delivery rejected: %v", ie)
	}
	return err
}

// HandlerConfig selects the optional debug surface of the HTTP handler.
type HandlerConfig struct {
	// EnablePProf mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiles expose internals and cost CPU, so production deployments must
	// opt in (the -pprof flag of cmd/server).
	EnablePProf bool
}

// Handler returns the HTTP handler with all routes registered and the debug
// surface at its defaults (pprof off).
func (s *Server) Handler() http.Handler { return s.HandlerWith(HandlerConfig{}) }

// HandlerWith returns the HTTP handler with all routes registered, honoring
// the given debug configuration. Every route is wrapped in the telemetry
// middleware, so /metrics reports per-endpoint request counts and latency.
func (s *Server) HandlerWith(cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, path string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(path, h))
	}
	// Query routes go through the admission controller (a no-op when
	// admission is disabled); ingest, health, and debug routes never shed.
	route("POST /ingest", "/ingest", s.traced("ingest", s.handleIngest))
	route("GET /range", "/range", s.traced("range", s.admit(s.handleRange)))
	route("GET /knn", "/knn", s.traced("knn", s.admit(s.handleKNN)))
	route("GET /localize", "/localize", s.admit(s.handleLocalize))
	route("GET /occupancy", "/occupancy", s.admit(s.handleOccupancy))
	route("GET /objects", "/objects", s.handleObjects)
	route("GET /stats", "/stats", s.handleStats)
	route("GET /plan", "/plan", s.handlePlan)
	route("GET /route", "/route", s.handleRoute)
	route("GET /readers", "/readers", s.handleReaders)
	route("GET /snapshot.svg", "/snapshot.svg", s.admit(s.handleSnapshot))
	route("GET /metrics", "/metrics", s.handleMetrics)
	route("GET /healthz", "/healthz", s.handleHealthz)
	route("GET /readyz", "/readyz", s.handleReadyz)
	if s.clu != nil {
		// Peer RPCs skip the JSON instrumentation path (gob body, peer-only
		// traffic) but still get their own telemetry via repro_peer_*.
		mux.Handle("POST /cluster/rpc", s.clu.RPCHandler())
		route("GET /cluster", "/cluster", s.handleCluster)
	}
	route("GET /debug/filtertrace", "/debug/filtertrace", s.handleFilterTrace)
	route("GET /debug/slowqueries", "/debug/slowqueries", s.handleSlowQueries)
	route("GET /debug/traces", "/debug/traces", s.handleTraces)
	route("GET /{$}", "/", s.handleUI)
	if cfg.EnablePProf {
		// pprof handlers do their own method checks and serve GET only.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusWriter records the status code a handler sent (200 when it never
// called WriteHeader explicitly). It also pins the route pattern and the
// request trace so downstream code holding only the ResponseWriter — the
// writeJSON encode path, the trace middleware — can attribute without
// re-deriving either from the request.
type statusWriter struct {
	http.ResponseWriter
	code int
	path string
	tc   *trace.Context
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with the request counter, latency histogram,
// and panic recovery. The path label is the route pattern, never the raw
// URL, so cardinality stays bounded. A panicking handler becomes a 500 with
// a JSON error body (when nothing was written yet) instead of tearing down
// the connection; http.ErrAbortHandler keeps its contract and re-panics.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	lat := s.httpLatency.With(path)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		r = r.WithContext(context.WithValue(r.Context(), arrivalKey{}, start))
		sw := &statusWriter{ResponseWriter: w, path: path}
		defer func() {
			rec := recover()
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			if rec != nil {
				s.httpPanics.With(path).Inc()
				log.Printf("server: panic in %s %s: %v\n%s", r.Method, path, rec, debug.Stack())
				if sw.code == 0 {
					sw.Header().Set("Content-Type", "application/json")
					sw.WriteHeader(http.StatusInternalServerError)
					json.NewEncoder(sw).Encode(map[string]string{"error": "internal server error"})
				}
			}
			code := sw.code
			if code == 0 {
				code = http.StatusOK
			}
			lat.ObserveSince(start)
			s.httpRequests.With(path, strconv.Itoa(code)).Inc()
		}()
		h(sw, r)
	}
}

// traced opens a request trace around a handler and carries it via the
// request context and the statusWriter. The deferred Finish applies the
// tail-sampling decision; it runs before instrument's panic recovery, so a
// panicking handler leaves sw.code at 0 — treated as an error alongside
// 5xx responses. With tracing disabled the handler is returned unwrapped.
func (s *Server) traced(kind string, h http.HandlerFunc) http.HandlerFunc {
	if s.tracer == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		tc := s.tracer.Start(kind)
		sw, _ := w.(*statusWriter)
		if sw != nil {
			sw.tc = tc
		}
		defer func() {
			if sw != nil && (sw.code == 0 || sw.code >= 500) {
				tc.SetError()
			}
			s.tracer.Finish(tc)
		}()
		h(w, r.WithContext(trace.With(r.Context(), tc)))
	}
}

// admit gates a query handler behind the admission controller: shed
// requests get 429 with a Retry-After estimated from the current backlog
// and recent query latency. Admission state also drives the degraded-mode
// controller. With admission disabled this is a transparent wrapper.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tc := trace.From(r.Context())
		if s.adm == nil {
			// Zero-duration span: the trace still shows the request cleared
			// admission, just with nothing to wait on.
			tc.Add("admission", trace.RouterShard, time.Now(), 0)
			h(w, r)
			return
		}
		astart := time.Now()
		release, ok := s.adm.acquire()
		tc.Since("admission", trace.RouterShard, astart)
		if !ok {
			tc.SetShed()
			s.updateDegraded()
			retry := s.adm.retryAfterHeader()
			w.Header().Set("Retry-After", retry)
			httpError(w, http.StatusTooManyRequests, "overloaded: query shed, retry in %ss", retry)
			return
		}
		defer func() {
			release()
			s.updateDegraded()
		}()
		h(w, r)
	}
}

// updateDegraded applies the degraded-mode controller's decision to the
// engine: entering reduces the per-object particle budget along the Ns
// ablation knob, leaving restores full fidelity. Called with s.mu NOT held.
func (s *Server) updateDegraded() {
	degraded, changed := s.adm.degradeDecision(time.Now())
	if !changed {
		return
	}
	budget := 0
	if degraded {
		budget = s.adm.cfg.DegradedParticles
	}
	s.lock()
	s.sys.SetParticleBudget(budget)
	s.unlock()
	if degraded {
		s.degradedMode.Set(1)
		log.Printf("server: sustained overload, degrading particle budget to %d", budget)
	} else {
		s.degradedMode.Set(0)
		log.Printf("server: load cleared, restoring full particle budget")
	}
	s.degradedTransitions.Inc()
}

// handleReaders serves the per-reader liveness snapshot the health monitor
// maintains: state, silence, smoothed detection rate, and accrued missed
// evidence per reader.
func (s *Server) handleReaders(w http.ResponseWriter, r *http.Request) {
	s.lock()
	enabled := s.sys.HealthMonitorEnabled()
	readers := s.sys.ReaderHealth()
	now := s.sys.Now()
	s.unlock()
	if readers == nil {
		readers = []health.ReaderHealth{}
	}
	s.writeJSON(w, map[string]any{
		"enabled": enabled,
		"now":     now,
		"readers": readers,
	})
}

// handleCluster serves the cluster membership, ownership, and per-peer
// forwarding status (mounted only when the engine is a cluster node).
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, s.clu.ClusterStatus())
}

// handleHealthz is liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: recovery is complete, no drain is in progress,
// and the durability layer (when enabled) has not fail-stopped. Quarantined
// shards degrade the answer but do not fail it — the node still serves
// correct (partial-marked) results from its live shards, so 200 with
// "status": "degraded" and the shard list; 503 means "route traffic
// elsewhere" (draining, WAL fail-stopped, or every shard quarantined), and
// the body says why.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
		return
	}
	s.lock()
	walErr := s.sys.WALError()
	rec := s.sys.Recovery()
	degraded := s.sys.DegradedShards()
	s.unlock()
	if walErr != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "wal failed", "error": walErr.Error()})
		return
	}
	resp := map[string]any{
		"status":     "ok",
		"durability": rec.Enabled,
		"recovery":   rec,
	}
	if len(degraded) > 0 {
		resp["status"] = "degraded"
		resp["quarantinedShards"] = len(degraded)
		resp["degradedShards"] = degraded
	}
	// A node that cannot reach part of its cluster still serves correct
	// partial answers, so unreachable peers degrade readiness (200) the same
	// way quarantined shards do — they never fail it.
	if s.clu != nil {
		if peers := s.clu.DegradedPeers(); len(peers) > 0 {
			resp["status"] = "degraded"
			resp["degradedPeers"] = peers
		}
	}
	s.writeJSON(w, resp)
}

// uiPage is a minimal live dashboard: the SVG snapshot refreshing every two
// seconds next to the occupancy table.
const uiPage = `<!DOCTYPE html>
<html><head><title>indoor query system</title>
<style>
body { font-family: sans-serif; margin: 1.5em; color: #222; }
#wrap { display: flex; gap: 2em; align-items: flex-start; }
img { border: 1px solid #ccc; max-width: 70vw; }
table { border-collapse: collapse; }
td, th { border: 1px solid #ddd; padding: 2px 8px; font-size: 13px; text-align: left; }
</style></head>
<body>
<h2>Indoor spatial query system</h2>
<div id="wrap">
  <img id="snap" src="/snapshot.svg" alt="floor snapshot">
  <div>
    <h3>Occupancy</h3>
    <table id="occ"><tr><th>room</th><th>expected</th></tr></table>
    <p id="stats"></p>
  </div>
</div>
<script>
async function tick() {
  document.getElementById('snap').src = '/snapshot.svg?ts=' + Date.now();
  const occ = (await (await fetch('/occupancy')).json()).occupancy;
  const rows = occ.slice(0, 15).map(function(e) {
    return '<tr><td>' + e.room + '</td><td>' + e.p.toFixed(2) + '</td></tr>';
  }).join('');
  document.getElementById('occ').innerHTML = '<tr><th>room</th><th>expected</th></tr>' + rows;
  const st = await (await fetch('/stats')).json();
  document.getElementById('stats').textContent =
    't=' + st.now + ', readings=' + st.work.ReadingsIngested +
    ', dropped=' + st.work.ReadingsDropped + ', rejected=' + st.ingestRejected;
}
tick();
setInterval(tick, 2000);
</script>
</body></html>
`

func (s *Server) handleUI(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, uiPage)
}

// ingestRequest is the body of POST /ingest: one gateway delivery.
type ingestRequest = model.Batch

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	tc := trace.From(r.Context())
	body := r.Body
	if s.maxIngestBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxIngestBytes)
	}
	var req ingestRequest
	dstart := time.Now()
	err := json.NewDecoder(body).Decode(&req)
	tc.Since("decode", trace.RouterShard, dstart)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			// Refused undecoded: the loss is counted at batch granularity so
			// the drop accounting stays complete (Stats().Ingest).
			s.lock()
			s.sys.NoteOversizedBody()
			s.unlock()
			httpError(w, http.StatusRequestEntityTooLarge,
				"body exceeds %d-byte ingest cap; split the delivery", s.maxIngestBytes)
			return
		}
		httpError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	// Batch seconds are positive by contract (the stream clock starts at
	// second 1); anything else is garbage input, not a late delivery.
	if req.Time <= 0 {
		httpError(w, http.StatusBadRequest, "bad time %d: batch seconds are positive", req.Time)
		return
	}
	// Stamp readings with the batch time when omitted.
	for i := range req.Readings {
		if req.Readings[i].Time == 0 {
			req.Readings[i].Time = req.Time
		}
	}
	s.lock()
	err = s.sys.IngestContext(r.Context(), req.Time, req.Readings)
	now := s.sys.Now()
	s.unlock()
	var ie *ingest.Error
	if errors.As(err, &ie) && ie.Rejected {
		httpError(w, http.StatusConflict, "%v", ie)
		return
	}
	resp := map[string]any{
		"now":      now,
		"received": len(req.Readings),
		"accepted": len(req.Readings),
		"dropped":  0,
	}
	if ie != nil {
		resp["accepted"] = len(req.Readings) - ie.Dropped
		resp["dropped"] = ie.Dropped
		resp["reason"] = ie.Kind.String()
	}
	s.writeJSON(w, resp)
}

// objProb is one entry of a probabilistic answer, sorted by probability.
type objProb struct {
	Object model.ObjectID `json:"object"`
	P      float64        `json:"p"`
}

func toSorted(rs model.ResultSet) []objProb {
	out := make([]objProb, 0, len(rs))
	for o, p := range rs {
		out = append(out, objProb{Object: o, P: p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		return out[i].Object < out[j].Object
	})
	return out
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	x, errX := queryFloat(r, "x")
	y, errY := queryFloat(r, "y")
	ww, errW := queryFloat(r, "w")
	h, errH := queryFloat(r, "h")
	if errX != nil || errY != nil || errW != nil || errH != nil {
		httpError(w, http.StatusBadRequest, "range needs float params x, y, w, h")
		return
	}
	at, atOK, err := queryTime(r, "at")
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad at: %v", err)
		return
	}
	deadline, err := queryDeadline(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad deadline_ms: %v", err)
		return
	}
	win := geom.RectWH(x, y, ww, h)
	s.lock()
	var rs model.ResultSet
	var qerr error
	switch {
	case atOK:
		rs = s.sys.RangeQueryAt(win, at)
	case deadline > 0:
		ctx, cancel := context.WithTimeout(r.Context(), deadline)
		rs, qerr = s.sys.RangeQueryContext(ctx, win)
		cancel()
	default:
		// Deadline-free: the Context variant threads the trace (when one is
		// attached) and still surfaces a quarantine-partial marker; without
		// a deadline it cannot expire.
		rs, qerr = s.sys.RangeQueryContext(r.Context(), win)
	}
	s.unlock()
	if relayShed(w, qerr) {
		return
	}
	resp := map[string]any{"window": [4]float64{x, y, ww, h}, "result": toSorted(rs)}
	addPartial(resp, qerr)
	s.writeJSON(w, resp)
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	x, errX := queryFloat(r, "x")
	y, errY := queryFloat(r, "y")
	k, errK := strconv.Atoi(r.URL.Query().Get("k"))
	if errX != nil || errY != nil || errK != nil || k <= 0 {
		httpError(w, http.StatusBadRequest, "knn needs float params x, y and positive integer k")
		return
	}
	at, atOK, err := queryTime(r, "at")
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad at: %v", err)
		return
	}
	deadline, err := queryDeadline(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad deadline_ms: %v", err)
		return
	}
	s.lock()
	var rs model.ResultSet
	var qerr error
	switch {
	case atOK:
		rs = s.sys.KNNQueryAt(geom.Pt(x, y), k, at)
	case deadline > 0:
		ctx, cancel := context.WithTimeout(r.Context(), deadline)
		rs, qerr = s.sys.KNNQueryContext(ctx, geom.Pt(x, y), k)
		cancel()
	default:
		rs, qerr = s.sys.KNNQueryContext(r.Context(), geom.Pt(x, y), k)
	}
	s.unlock()
	if relayShed(w, qerr) {
		return
	}
	resp := map[string]any{"q": [2]float64{x, y}, "k": k, "result": toSorted(rs)}
	addPartial(resp, qerr)
	s.writeJSON(w, resp)
}

// arrivalKey carries the request's arrival timestamp (stamped by
// instrument, before admission queueing) through the context.
type arrivalKey struct{}

// queryDeadline parses the optional deadline_ms parameter (0: no deadline).
// The budget is measured from the request's ARRIVAL, not from the moment the
// handler finally runs: time spent queued behind the admission gate or the
// serialization lock is subtracted, so a forwarded cluster query can never
// spend more wall time than the client asked for end to end. A budget fully
// consumed by queueing is clamped to 1ms — the query starts, expires at its
// first deadline check, and returns a partial, the usual overrun contract.
func queryDeadline(r *http.Request) (time.Duration, error) {
	v := r.URL.Query().Get("deadline_ms")
	if v == "" {
		return 0, nil
	}
	ms, err := strconv.Atoi(v)
	if err != nil {
		return 0, err
	}
	if ms <= 0 {
		return 0, fmt.Errorf("deadline_ms must be positive, got %d", ms)
	}
	d := time.Duration(ms) * time.Millisecond
	if arrival, ok := r.Context().Value(arrivalKey{}).(time.Time); ok {
		d -= time.Since(arrival)
		if d < time.Millisecond {
			d = time.Millisecond
		}
	}
	return d, nil
}

// addPartial marks a response produced by a query that could not cover the
// complete answer: a deadline overrun (the result is a usable prefix) or
// quarantined shards (the result is complete over the live shards only).
// The request still succeeds (200) — a partial under deadline pressure or
// degraded durability is the contract, not an error. Both causes can apply
// at once (engines join them with errors.Join); each contributes its field.
func addPartial(resp map[string]any, qerr error) {
	if qerr == nil {
		return
	}
	resp["partial"] = true
	if de, ok := engine.IsDeadline(qerr); ok {
		resp["deadline_stage"] = de.Stage
	}
	if qe, ok := engine.IsQuarantine(qerr); ok {
		resp["degradedShards"] = qe.Shards
	}
	if ce, ok := cluster.IsDegraded(qerr); ok {
		resp["degradedPeers"] = ce.Peers
	}
}

// relayShed handles an owner-side shed of a forwarded cluster query: the
// 429 carries the owner's own Retry-After estimate, relayed verbatim — the
// forwarder's EWMA describes the forwarder's load, not the peer that shed.
// Reports whether the response was written.
func relayShed(w http.ResponseWriter, qerr error) bool {
	se, ok := cluster.IsShed(qerr)
	if !ok {
		return false
	}
	w.Header().Set("Retry-After", strconv.Itoa(se.RetryAfterSeconds))
	httpError(w, http.StatusTooManyRequests,
		"overloaded: peer %s shed the forwarded query, retry in %ds", se.Peer, se.RetryAfterSeconds)
	return true
}

// handleRoute returns the shortest indoor walking route between two points
// as a polyline: GET /route?x1=&y1=&x2=&y2=.
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	x1, e1 := queryFloat(r, "x1")
	y1, e2 := queryFloat(r, "y1")
	x2, e3 := queryFloat(r, "x2")
	y2, e4 := queryFloat(r, "y2")
	if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
		httpError(w, http.StatusBadRequest, "route needs float params x1, y1, x2, y2")
		return
	}
	s.lock()
	g := s.sys.Graph()
	pts, dist := g.Route(g.NearestLocation(geom.Pt(x1, y1)), g.NearestLocation(geom.Pt(x2, y2)))
	s.unlock()
	poly := make([][2]float64, len(pts))
	for i, p := range pts {
		poly[i] = [2]float64{p.X, p.Y}
	}
	s.writeJSON(w, map[string]any{"meters": dist, "polyline": poly})
}

func (s *Server) handleLocalize(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("object"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "localize needs integer param object")
		return
	}
	s.lock()
	loc, ok := s.sys.Localize(model.ObjectID(id))
	s.unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "object %d has no readings", id)
		return
	}
	roomName := ""
	if loc.Room != floorplan.NoRoom {
		roomName = s.plan.Room(loc.Room).Name
	}
	s.writeJSON(w, map[string]any{
		"object":   loc.Object,
		"mean":     [2]float64{loc.Mean.X, loc.Mean.Y},
		"room":     roomName,
		"roomProb": loc.RoomProb,
		"entropy":  loc.Entropy,
	})
}

func (s *Server) handleOccupancy(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Room string  `json:"room"`
		P    float64 `json:"p"`
	}
	deadline, err := queryDeadline(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad deadline_ms: %v", err)
		return
	}
	ctx := r.Context()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	s.lock()
	occ, qerr := s.sys.OccupancyContext(ctx)
	s.unlock()
	if relayShed(w, qerr) {
		return
	}
	// Non-nil so an empty answer encodes as [] rather than null.
	out := []entry{}
	for _, ro := range occ {
		name := "(hallways)"
		if ro.Room != floorplan.NoRoom {
			name = s.plan.Room(ro.Room).Name
		}
		out = append(out, entry{Room: name, P: ro.P})
	}
	resp := map[string]any{"occupancy": out}
	addPartial(resp, qerr)
	s.writeJSON(w, resp)
}

func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request) {
	s.lock()
	objs := s.sys.KnownObjects()
	s.unlock()
	if objs == nil {
		objs = []model.ObjectID{}
	}
	s.writeJSON(w, objs)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.lock()
	hits, misses := s.sys.CacheStats()
	st := s.sys.Stats()
	now := s.sys.Now()
	s.unlock()
	s.writeJSON(w, map[string]any{
		"now":         now,
		"work":        st,
		"cacheHits":   hits,
		"cacheMisses": misses,
		// Whole deliveries refused as late, whichever entry point they used
		// (HTTP 409 or IngestDirect). Served from the engine's own drop
		// accounting so it can never disagree with /metrics.
		"ingestRejected": st.Ingest.LateBatches,
	})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, s.plan)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.lock()
	c := viz.NewCanvas(s.plan, 10)
	c.DrawPlan(s.plan)
	c.DrawDeployment(s.dep)
	tab := s.sys.Preprocess(s.sys.KnownObjects())
	colors := []string{"#d62728", "#ff7f0e", "#9467bd", "#17becf", "#bcbd22", "#e377c2"}
	for i, obj := range tab.Objects() {
		c.DrawDistribution(s.sys.AnchorIndex(), tab.DistributionOf(obj), colors[i%len(colors)])
	}
	svg := c.SVG()
	s.unlock()
	w.Header().Set("Content-Type", "image/svg+xml")
	fmt.Fprint(w, svg)
}

// handleMetrics serves the Prometheus scrape: the scrape-time mirrors are
// refreshed under the lock, then the lock is dropped and the registry
// renders into a buffer (atomics need no lock), so a stalled scraper never
// blocks ingestion.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.lock()
	s.sys.SyncMetrics()
	s.unlock()
	var buf bytes.Buffer
	if _, err := s.sys.Telemetry().Registry().WriteTo(&buf); err != nil {
		httpError(w, http.StatusInternalServerError, "render metrics: %v", err)
		return
	}
	w.Header().Set("Content-Type", obs.ContentType)
	w.Write(buf.Bytes())
}

// handleFilterTrace serves the bounded ring of recent particle-filter runs
// with their per-stage timings.
func (s *Server) handleFilterTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.sys.Telemetry().Trace
	traces := tr.Snapshot()
	if traces == nil {
		traces = []obs.FilterTrace{}
	}
	s.writeJSON(w, map[string]any{
		"capacity": tr.Cap(),
		"total":    tr.Total(),
		"traces":   traces,
	})
}

// handleSlowQueries serves the bounded ring of queries that crossed the
// configured slow-query threshold.
func (s *Server) handleSlowQueries(w http.ResponseWriter, r *http.Request) {
	sl := s.sys.Telemetry().Slow
	queries := sl.Snapshot()
	if queries == nil {
		queries = []engine.SlowQuery{}
	}
	s.writeJSON(w, map[string]any{
		"capacity": sl.Cap(),
		"total":    sl.Total(),
		"queries":  queries,
	})
}

// handleTraces serves the tail-sampled request-trace ring as JSON, or as
// Chrome trace-event format (load into chrome://tracing or Perfetto) with
// ?format=chrome. 404 when tracing is disabled.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		httpError(w, http.StatusNotFound, "tracing disabled (trace sample rate is negative)")
		return
	}
	traces := s.tracer.Snapshot()
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		if err := trace.WriteChrome(w, traces); err != nil {
			s.encodeErrors.With("/debug/traces").Inc()
			log.Printf("server: encode chrome trace: %v", err)
		}
		return
	}
	s.writeJSON(w, map[string]any{
		"capacity": s.tracer.Capacity(),
		"total":    s.tracer.Total(),
		"sample":   s.tracer.SampleRate(),
		"traces":   traces,
	})
}

func queryFloat(r *http.Request, name string) (float64, error) {
	return strconv.ParseFloat(r.URL.Query().Get(name), 64)
}

// queryTime parses an optional time parameter; ok=false when absent.
func queryTime(r *http.Request, name string) (model.Time, bool, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, false, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	return model.Time(n), err == nil, err
}

// writeJSON encodes v to the client with the Content-Type committed before
// the first body byte. Encode failures (client gone mid-write, or a value
// that cannot marshal) are counted and logged rather than swallowed. The
// route pattern and request trace ride on the statusWriter, so streamed
// encodes still attribute to their path after the handler returned the
// ResponseWriter.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	path := "unknown"
	var tc *trace.Context
	if sw, ok := w.(*statusWriter); ok {
		path, tc = sw.path, sw.tc
	}
	w.Header().Set("Content-Type", "application/json")
	estart := time.Now()
	err := json.NewEncoder(w).Encode(v)
	tc.Since("encode", trace.RouterShard, estart)
	if err != nil {
		tc.SetError()
		s.encodeErrors.With(path).Inc()
		log.Printf("server: encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}
