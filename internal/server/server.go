// Package server exposes the indoor spatial query system over HTTP with a
// small JSON API, so reader gateways can stream raw readings in and
// applications can query object locations out. Standard library only.
//
// Endpoints:
//
//	POST /ingest        {"time": 123, "readings": [{"Object":1,"Reader":2,"Time":123}, ...]}
//	GET  /range?x=&y=&w=&h=[&at=]   probabilistic range query
//	GET  /knn?x=&y=&k=[&at=]        probabilistic kNN query
//	GET  /localize?object=          localization summary for one object
//	GET  /occupancy                 expected objects per room
//	GET  /objects                   known object IDs
//	GET  /stats                     cumulative work counters
//	GET  /plan                      the floor plan as JSON
//	GET  /snapshot.svg              rendered floor plan + distributions
//
// The System is not safe for concurrent use; the server serializes access
// with a mutex, which matches the one-writer reality of a reading stream.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/viz"
)

// Server wraps a System with an HTTP API.
type Server struct {
	mu   sync.Mutex
	sys  *engine.System
	plan *floorplan.Plan
	dep  *rfid.Deployment
	// rejected counts whole deliveries refused as late, whether they came
	// in over HTTP (409) or through IngestDirect — same semantics for both.
	rejected int
}

// New builds a Server around an assembled system.
func New(sys *engine.System, plan *floorplan.Plan, dep *rfid.Deployment) *Server {
	return &Server{sys: sys, plan: plan, dep: dep}
}

// IngestDirect feeds one delivery of readings bypassing HTTP (used by the
// demo simulator); it takes the same lock as the handlers. Rejections are
// reported exactly as handleIngest reports them: the typed error is
// returned, logged, and counted in the same rejection counter that backs
// the HTTP 409 path.
func (s *Server) IngestDirect(t model.Time, raws []model.RawReading) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.sys.Ingest(t, raws)
	var ie *ingest.Error
	if errors.As(err, &ie) && ie.Rejected {
		s.rejected++
		log.Printf("ingest: direct delivery rejected: %v", ie)
	}
	return err
}

// Handler returns the HTTP handler with all routes registered.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /range", s.handleRange)
	mux.HandleFunc("GET /knn", s.handleKNN)
	mux.HandleFunc("GET /localize", s.handleLocalize)
	mux.HandleFunc("GET /occupancy", s.handleOccupancy)
	mux.HandleFunc("GET /objects", s.handleObjects)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /plan", s.handlePlan)
	mux.HandleFunc("GET /route", s.handleRoute)
	mux.HandleFunc("GET /snapshot.svg", s.handleSnapshot)
	mux.HandleFunc("GET /{$}", s.handleUI)
	return mux
}

// uiPage is a minimal live dashboard: the SVG snapshot refreshing every two
// seconds next to the occupancy table.
const uiPage = `<!DOCTYPE html>
<html><head><title>indoor query system</title>
<style>
body { font-family: sans-serif; margin: 1.5em; color: #222; }
#wrap { display: flex; gap: 2em; align-items: flex-start; }
img { border: 1px solid #ccc; max-width: 70vw; }
table { border-collapse: collapse; }
td, th { border: 1px solid #ddd; padding: 2px 8px; font-size: 13px; text-align: left; }
</style></head>
<body>
<h2>Indoor spatial query system</h2>
<div id="wrap">
  <img id="snap" src="/snapshot.svg" alt="floor snapshot">
  <div>
    <h3>Occupancy</h3>
    <table id="occ"><tr><th>room</th><th>expected</th></tr></table>
    <p id="stats"></p>
  </div>
</div>
<script>
async function tick() {
  document.getElementById('snap').src = '/snapshot.svg?ts=' + Date.now();
  const occ = await (await fetch('/occupancy')).json();
  const rows = occ.slice(0, 15).map(function(e) {
    return '<tr><td>' + e.room + '</td><td>' + e.p.toFixed(2) + '</td></tr>';
  }).join('');
  document.getElementById('occ').innerHTML = '<tr><th>room</th><th>expected</th></tr>' + rows;
  const st = await (await fetch('/stats')).json();
  document.getElementById('stats').textContent =
    't=' + st.now + ', readings=' + st.work.ReadingsIngested +
    ', dropped=' + st.work.ReadingsDropped + ', rejected=' + st.ingestRejected;
}
tick();
setInterval(tick, 2000);
</script>
</body></html>
`

func (s *Server) handleUI(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, uiPage)
}

// ingestRequest is the body of POST /ingest: one gateway delivery.
type ingestRequest = model.Batch

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	// Batch seconds are positive by contract (the stream clock starts at
	// second 1); anything else is garbage input, not a late delivery.
	if req.Time <= 0 {
		httpError(w, http.StatusBadRequest, "bad time %d: batch seconds are positive", req.Time)
		return
	}
	// Stamp readings with the batch time when omitted.
	for i := range req.Readings {
		if req.Readings[i].Time == 0 {
			req.Readings[i].Time = req.Time
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.sys.Ingest(req.Time, req.Readings)
	var ie *ingest.Error
	if errors.As(err, &ie) && ie.Rejected {
		s.rejected++
		httpError(w, http.StatusConflict, "%v", ie)
		return
	}
	resp := map[string]any{
		"now":      s.sys.Now(),
		"received": len(req.Readings),
		"accepted": len(req.Readings),
		"dropped":  0,
	}
	if ie != nil {
		resp["accepted"] = len(req.Readings) - ie.Dropped
		resp["dropped"] = ie.Dropped
		resp["reason"] = ie.Kind.String()
	}
	writeJSON(w, resp)
}

// objProb is one entry of a probabilistic answer, sorted by probability.
type objProb struct {
	Object model.ObjectID `json:"object"`
	P      float64        `json:"p"`
}

func toSorted(rs model.ResultSet) []objProb {
	out := make([]objProb, 0, len(rs))
	for o, p := range rs {
		out = append(out, objProb{Object: o, P: p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		return out[i].Object < out[j].Object
	})
	return out
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	x, errX := queryFloat(r, "x")
	y, errY := queryFloat(r, "y")
	ww, errW := queryFloat(r, "w")
	h, errH := queryFloat(r, "h")
	if errX != nil || errY != nil || errW != nil || errH != nil {
		httpError(w, http.StatusBadRequest, "range needs float params x, y, w, h")
		return
	}
	win := geom.RectWH(x, y, ww, h)
	s.mu.Lock()
	defer s.mu.Unlock()
	var rs model.ResultSet
	if at, ok, err := queryTime(r, "at"); err != nil {
		httpError(w, http.StatusBadRequest, "bad at: %v", err)
		return
	} else if ok {
		rs = s.sys.RangeQueryAt(win, at)
	} else {
		rs = s.sys.RangeQuery(win)
	}
	writeJSON(w, map[string]any{"window": [4]float64{x, y, ww, h}, "result": toSorted(rs)})
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	x, errX := queryFloat(r, "x")
	y, errY := queryFloat(r, "y")
	k, errK := strconv.Atoi(r.URL.Query().Get("k"))
	if errX != nil || errY != nil || errK != nil || k <= 0 {
		httpError(w, http.StatusBadRequest, "knn needs float params x, y and positive integer k")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var rs model.ResultSet
	if at, ok, err := queryTime(r, "at"); err != nil {
		httpError(w, http.StatusBadRequest, "bad at: %v", err)
		return
	} else if ok {
		rs = s.sys.KNNQueryAt(geom.Pt(x, y), k, at)
	} else {
		rs = s.sys.KNNQuery(geom.Pt(x, y), k)
	}
	writeJSON(w, map[string]any{"q": [2]float64{x, y}, "k": k, "result": toSorted(rs)})
}

// handleRoute returns the shortest indoor walking route between two points
// as a polyline: GET /route?x1=&y1=&x2=&y2=.
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	x1, e1 := queryFloat(r, "x1")
	y1, e2 := queryFloat(r, "y1")
	x2, e3 := queryFloat(r, "x2")
	y2, e4 := queryFloat(r, "y2")
	if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
		httpError(w, http.StatusBadRequest, "route needs float params x1, y1, x2, y2")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.sys.Graph()
	pts, dist := g.Route(g.NearestLocation(geom.Pt(x1, y1)), g.NearestLocation(geom.Pt(x2, y2)))
	poly := make([][2]float64, len(pts))
	for i, p := range pts {
		poly[i] = [2]float64{p.X, p.Y}
	}
	writeJSON(w, map[string]any{"meters": dist, "polyline": poly})
}

func (s *Server) handleLocalize(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("object"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "localize needs integer param object")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	loc, ok := s.sys.Localize(model.ObjectID(id))
	if !ok {
		httpError(w, http.StatusNotFound, "object %d has no readings", id)
		return
	}
	roomName := ""
	if loc.Room != floorplan.NoRoom {
		roomName = s.plan.Room(loc.Room).Name
	}
	writeJSON(w, map[string]any{
		"object":   loc.Object,
		"mean":     [2]float64{loc.Mean.X, loc.Mean.Y},
		"room":     roomName,
		"roomProb": loc.RoomProb,
		"entropy":  loc.Entropy,
	})
}

func (s *Server) handleOccupancy(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	type entry struct {
		Room string  `json:"room"`
		P    float64 `json:"p"`
	}
	// Non-nil so an empty answer encodes as [] rather than null.
	out := []entry{}
	for _, ro := range s.sys.Occupancy() {
		name := "(hallways)"
		if ro.Room != floorplan.NoRoom {
			name = s.plan.Room(ro.Room).Name
		}
		out = append(out, entry{Room: name, P: ro.P})
	}
	writeJSON(w, out)
}

func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	objs := s.sys.Collector().KnownObjects()
	if objs == nil {
		objs = []model.ObjectID{}
	}
	writeJSON(w, objs)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	hits, misses := s.sys.CacheStats()
	writeJSON(w, map[string]any{
		"now":            s.sys.Now(),
		"work":           s.sys.Stats(),
		"cacheHits":      hits,
		"cacheMisses":    misses,
		"ingestRejected": s.rejected,
	})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.Marshal(s.plan)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode plan: %v", err)
		return
	}
	w.Write(data)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := viz.NewCanvas(s.plan, 10)
	c.DrawPlan(s.plan)
	c.DrawDeployment(s.dep)
	tab := s.sys.Preprocess(s.sys.Collector().KnownObjects())
	colors := []string{"#d62728", "#ff7f0e", "#9467bd", "#17becf", "#bcbd22", "#e377c2"}
	for i, obj := range tab.Objects() {
		c.DrawDistribution(s.sys.AnchorIndex(), tab.DistributionOf(obj), colors[i%len(colors)])
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	fmt.Fprint(w, c.SVG())
}

func queryFloat(r *http.Request, name string) (float64, error) {
	return strconv.ParseFloat(r.URL.Query().Get(name), 64)
}

// queryTime parses an optional time parameter; ok=false when absent.
func queryTime(r *http.Request, name string) (model.Time, bool, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, false, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	return model.Time(n), err == nil, err
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}
