package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/rfid"
	"repro/internal/sim"
)

// testServer builds a server over a warmed-up world and returns a test
// HTTP server plus the simulator (for ground truth).
func testServer(t *testing.T) (*httptest.Server, *sim.Simulator) {
	t.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := engine.DefaultConfig()
	cfg.KeepHistory = true
	sys := engine.MustNew(plan, dep, cfg)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 12
	tc.DwellMin, tc.DwellMax = 2, 8
	world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 321)
	srv := New(sys, plan, dep)

	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Stream 120 seconds through the HTTP API itself.
	client := ts.Client()
	for i := 0; i < 120; i++ {
		tm, raws := world.Step()
		body, err := json.Marshal(ingestRequest{Time: tm, Readings: raws})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	return ts, world
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestIngestAndRange(t *testing.T) {
	ts, world := testServer(t)
	var out struct {
		Result []objProb `json:"result"`
	}
	if code := getJSON(t, ts, "/range?x=1&y=2&w=140&h=32", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Result) == 0 {
		t.Fatal("whole-floor range empty")
	}
	for _, op := range out.Result {
		if op.P < 0 || op.P > 1.0001 {
			t.Errorf("P(o%d) = %v", op.Object, op.P)
		}
	}
	_ = world
}

func TestKNNEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	var out struct {
		K      int       `json:"k"`
		Result []objProb `json:"result"`
	}
	if code := getJSON(t, ts, "/knn?x=35&y=12&k=3", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.K != 3 {
		t.Errorf("k echoed as %d", out.K)
	}
	// Sorted descending.
	for i := 1; i < len(out.Result); i++ {
		if out.Result[i].P > out.Result[i-1].P {
			t.Error("result not sorted")
		}
	}
}

func TestHistoricalQueryParam(t *testing.T) {
	ts, _ := testServer(t)
	var out struct {
		Result []objProb `json:"result"`
	}
	if code := getJSON(t, ts, "/range?x=1&y=2&w=140&h=32&at=60", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
}

func TestLocalizeEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	var objects []int
	if code := getJSON(t, ts, "/objects", &objects); code != http.StatusOK || len(objects) == 0 {
		t.Fatalf("objects: %d known", len(objects))
	}
	var out struct {
		Object  int        `json:"object"`
		Mean    [2]float64 `json:"mean"`
		Entropy float64    `json:"entropy"`
	}
	path := fmt.Sprintf("/localize?object=%d", objects[0])
	if code := getJSON(t, ts, path, &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Object != objects[0] {
		t.Errorf("object echoed as %d", out.Object)
	}
	// Unknown object: 404.
	if code := getJSON(t, ts, "/localize?object=9999", &out); code != http.StatusNotFound {
		t.Errorf("unknown object status %d", code)
	}
}

func TestOccupancyStatsPlanSnapshot(t *testing.T) {
	ts, _ := testServer(t)
	var occ []struct {
		Room string  `json:"room"`
		P    float64 `json:"p"`
	}
	if code := getJSON(t, ts, "/occupancy", &occ); code != http.StatusOK || len(occ) == 0 {
		t.Fatalf("occupancy: %d entries", len(occ))
	}
	var stats struct {
		Now  int64       `json:"now"`
		Work interface{} `json:"work"`
	}
	if code := getJSON(t, ts, "/stats", &stats); code != http.StatusOK || stats.Now != 120 {
		t.Fatalf("stats now = %d", stats.Now)
	}
	var plan struct {
		Rooms []any `json:"rooms"`
	}
	if code := getJSON(t, ts, "/plan", &plan); code != http.StatusOK || len(plan.Rooms) != 30 {
		t.Fatalf("plan rooms = %d", len(plan.Rooms))
	}
	resp, err := ts.Client().Get(ts.URL + "/snapshot.svg")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "svg") {
		t.Errorf("snapshot content type %q", ct)
	}
}

func TestIngestRejectsStaleTime(t *testing.T) {
	ts, _ := testServer(t)
	body, _ := json.Marshal(ingestRequest{Time: 5}) // far behind now=120
	resp, err := ts.Client().Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("stale ingest status %d", resp.StatusCode)
	}
}

func TestBadParams(t *testing.T) {
	ts, _ := testServer(t)
	for _, path := range []string{
		"/range?x=a&y=2&w=3&h=4",
		"/range?x=1",
		"/knn?x=1&y=2&k=0",
		"/knn?x=1&y=2&k=frog",
		"/localize?object=frog",
		"/range?x=1&y=2&w=3&h=4&at=frog",
	} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
	// Ingest with a broken body.
	resp, err := ts.Client().Post(ts.URL+"/ingest", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("broken ingest status %d", resp.StatusCode)
	}
}

func TestUIPage(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := ts.Client().Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("UI status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("UI content type %q", ct)
	}
}

func TestRouteEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	var out struct {
		Meters   float64      `json:"meters"`
		Polyline [][2]float64 `json:"polyline"`
	}
	if code := getJSON(t, ts, "/route?x1=5&y1=12&x2=60&y2=24", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Meters <= 0 || len(out.Polyline) < 2 {
		t.Errorf("route = %+v", out)
	}
	resp, err := ts.Client().Get(ts.URL + "/route?x1=a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad params status %d", resp.StatusCode)
	}
}
