package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/sim"
)

// testServer builds a server over a warmed-up world and returns a test
// HTTP server plus the simulator (for ground truth).
func testServer(t *testing.T) (*httptest.Server, *sim.Simulator) {
	t.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := engine.DefaultConfig()
	cfg.KeepHistory = true
	sys := engine.MustNew(plan, dep, cfg)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 12
	tc.DwellMin, tc.DwellMax = 2, 8
	world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 321)
	srv := New(sys, plan, dep)

	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Stream 120 seconds through the HTTP API itself.
	client := ts.Client()
	for i := 0; i < 120; i++ {
		tm, raws := world.Step()
		body, err := json.Marshal(ingestRequest{Time: tm, Readings: raws})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	return ts, world
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestIngestAndRange(t *testing.T) {
	ts, world := testServer(t)
	var out struct {
		Result []objProb `json:"result"`
	}
	if code := getJSON(t, ts, "/range?x=1&y=2&w=140&h=32", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Result) == 0 {
		t.Fatal("whole-floor range empty")
	}
	for _, op := range out.Result {
		if op.P < 0 || op.P > 1.0001 {
			t.Errorf("P(o%d) = %v", op.Object, op.P)
		}
	}
	_ = world
}

func TestKNNEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	var out struct {
		K      int       `json:"k"`
		Result []objProb `json:"result"`
	}
	if code := getJSON(t, ts, "/knn?x=35&y=12&k=3", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.K != 3 {
		t.Errorf("k echoed as %d", out.K)
	}
	// Sorted descending.
	for i := 1; i < len(out.Result); i++ {
		if out.Result[i].P > out.Result[i-1].P {
			t.Error("result not sorted")
		}
	}
}

func TestHistoricalQueryParam(t *testing.T) {
	ts, _ := testServer(t)
	var out struct {
		Result []objProb `json:"result"`
	}
	if code := getJSON(t, ts, "/range?x=1&y=2&w=140&h=32&at=60", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
}

func TestLocalizeEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	var objects []int
	if code := getJSON(t, ts, "/objects", &objects); code != http.StatusOK || len(objects) == 0 {
		t.Fatalf("objects: %d known", len(objects))
	}
	var out struct {
		Object  int        `json:"object"`
		Mean    [2]float64 `json:"mean"`
		Entropy float64    `json:"entropy"`
	}
	path := fmt.Sprintf("/localize?object=%d", objects[0])
	if code := getJSON(t, ts, path, &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Object != objects[0] {
		t.Errorf("object echoed as %d", out.Object)
	}
	// Unknown object: 404.
	if code := getJSON(t, ts, "/localize?object=9999", &out); code != http.StatusNotFound {
		t.Errorf("unknown object status %d", code)
	}
}

func TestOccupancyStatsPlanSnapshot(t *testing.T) {
	ts, _ := testServer(t)
	var occ struct {
		Occupancy []struct {
			Room string  `json:"room"`
			P    float64 `json:"p"`
		} `json:"occupancy"`
		Partial bool `json:"partial"`
	}
	if code := getJSON(t, ts, "/occupancy", &occ); code != http.StatusOK || len(occ.Occupancy) == 0 {
		t.Fatalf("occupancy: %d entries", len(occ.Occupancy))
	}
	if occ.Partial {
		t.Error("healthy occupancy marked partial")
	}
	var stats struct {
		Now  int64       `json:"now"`
		Work interface{} `json:"work"`
	}
	if code := getJSON(t, ts, "/stats", &stats); code != http.StatusOK || stats.Now != 120 {
		t.Fatalf("stats now = %d", stats.Now)
	}
	var plan struct {
		Rooms []any `json:"rooms"`
	}
	if code := getJSON(t, ts, "/plan", &plan); code != http.StatusOK || len(plan.Rooms) != 30 {
		t.Fatalf("plan rooms = %d", len(plan.Rooms))
	}
	resp, err := ts.Client().Get(ts.URL + "/snapshot.svg")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "svg") {
		t.Errorf("snapshot content type %q", ct)
	}
}

func TestIngestRejectsStaleTime(t *testing.T) {
	ts, _ := testServer(t)
	body, _ := json.Marshal(ingestRequest{Time: 5}) // far behind now=120
	resp, err := ts.Client().Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("stale ingest status %d", resp.StatusCode)
	}
}

func TestIngestRejectsNonpositiveTime(t *testing.T) {
	// Batch seconds are positive by contract; zero and negative times (and
	// with them absurd watermark openings) are refused at the HTTP boundary
	// before they reach the reorder buffer.
	_, ts := freshServer(t, ingest.Config{})
	for _, tm := range []model.Time{0, -1, -1 << 50} {
		code, _ := postBatch(t, ts, batchAt(tm, 1))
		if code != http.StatusBadRequest {
			t.Errorf("time %d: status %d, want 400", tm, code)
		}
	}
	var st workStats
	getJSON(t, ts, "/stats", &st)
	if st.IngestRejected != 0 || st.Work.ReadingsDropped != 0 {
		t.Errorf("refused garbage counted against the stream: %+v", st)
	}
}

func TestBadParams(t *testing.T) {
	ts, _ := testServer(t)
	for _, path := range []string{
		"/range?x=a&y=2&w=3&h=4",
		"/range?x=1",
		"/knn?x=1&y=2&k=0",
		"/knn?x=1&y=2&k=frog",
		"/localize?object=frog",
		"/range?x=1&y=2&w=3&h=4&at=frog",
	} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
	// Ingest with a broken body.
	resp, err := ts.Client().Post(ts.URL+"/ingest", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("broken ingest status %d", resp.StatusCode)
	}
}

func TestUIPage(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := ts.Client().Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("UI status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("UI content type %q", ct)
	}
}

func TestRouteEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	var out struct {
		Meters   float64      `json:"meters"`
		Polyline [][2]float64 `json:"polyline"`
	}
	if code := getJSON(t, ts, "/route?x1=5&y1=12&x2=60&y2=24", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Meters <= 0 || len(out.Polyline) < 2 {
		t.Errorf("route = %+v", out)
	}
	resp, err := ts.Client().Get(ts.URL + "/route?x1=a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad params status %d", resp.StatusCode)
	}
}

// freshServer builds a server with no warmup traffic and a configurable
// ingestion front end.
func freshServer(t *testing.T, icfg ingest.Config) (*Server, *httptest.Server) {
	t.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := engine.DefaultConfig()
	cfg.Ingest = icfg
	srv := New(engine.MustNew(plan, dep, cfg), plan, dep)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postBatch(t *testing.T, ts *httptest.Server, b model.Batch) (int, map[string]any) {
	t.Helper()
	body, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func batchAt(tm model.Time, objs ...int) model.Batch {
	b := model.Batch{Time: tm}
	for i, o := range objs {
		b.Readings = append(b.Readings, model.RawReading{
			Object: model.ObjectID(o), Reader: model.ReaderID(i), Time: tm,
		})
	}
	return b
}

// workStats decodes the drop accounting out of /stats.
type workStats struct {
	Work struct {
		ReadingsIngested int
		ReadingsDropped  int
		ReadingsPending  int
		Ingest           struct {
			DuplicateReadings  int
			MisstampedReadings int
			LateReadings       int
		}
	} `json:"work"`
	IngestRejected int `json:"ingestRejected"`
}

func TestEmptyResultJSONShapes(t *testing.T) {
	// A fresh system knows nothing; empty answers must encode as [], not null.
	_, ts := freshServer(t, ingest.Config{})
	for path, want := range map[string]string{
		"/occupancy": `{"occupancy":[]}`,
		"/objects":   "[]",
	} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.TrimSpace(string(body)); got != want {
			t.Errorf("%s empty body = %q, want %q", path, got, want)
		}
	}
}

func TestIngestOutOfOrderWithinHorizon(t *testing.T) {
	_, ts := freshServer(t, ingest.Config{Horizon: 5})
	for _, tm := range []model.Time{10, 12, 11, 13} {
		code, resp := postBatch(t, ts, batchAt(tm, 1))
		if code != http.StatusOK {
			t.Fatalf("t=%d: status %d (%v)", tm, code, resp)
		}
		if d, _ := resp["dropped"].(float64); d != 0 {
			t.Errorf("t=%d: dropped %v readings", tm, d)
		}
	}
	var st workStats
	if code := getJSON(t, ts, "/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.IngestRejected != 0 || st.Work.ReadingsDropped != 0 {
		t.Errorf("clean out-of-order stream counted drops: %+v", st)
	}
	if st.Work.ReadingsIngested+st.Work.ReadingsPending != 4 {
		t.Errorf("ingested %d + pending %d != 4 offered",
			st.Work.ReadingsIngested, st.Work.ReadingsPending)
	}
}

func TestIngestDuplicateBatch(t *testing.T) {
	// With a lateness horizon the retransmission meets its pending copy and
	// is dropped as a counted duplicate, not an error.
	_, ts := freshServer(t, ingest.Config{Horizon: 5})
	if code, _ := postBatch(t, ts, batchAt(10, 1, 2)); code != http.StatusOK {
		t.Fatalf("first delivery status %d", code)
	}
	code, resp := postBatch(t, ts, batchAt(10, 1, 2))
	if code != http.StatusOK {
		t.Fatalf("retransmission status %d", code)
	}
	if d, _ := resp["dropped"].(float64); d != 2 {
		t.Errorf("retransmission dropped %v, want 2", d)
	}
	if reason, _ := resp["reason"].(string); reason != "duplicate" {
		t.Errorf("reason = %q", reason)
	}
	var st workStats
	getJSON(t, ts, "/stats", &st)
	if st.Work.Ingest.DuplicateReadings != 2 {
		t.Errorf("stats duplicates = %d, want 2", st.Work.Ingest.DuplicateReadings)
	}

	// Without a horizon the second was already flushed: the retransmission
	// is late, refused whole with 409, and counted as rejected.
	_, strict := freshServer(t, ingest.Config{})
	postBatch(t, strict, batchAt(10, 1, 2))
	if code, _ := postBatch(t, strict, batchAt(10, 1, 2)); code != http.StatusConflict {
		t.Fatalf("strict retransmission status %d, want 409", code)
	}
	var st2 workStats
	getJSON(t, strict, "/stats", &st2)
	if st2.IngestRejected != 1 || st2.Work.Ingest.LateReadings != 2 {
		t.Errorf("strict rejection accounting: %+v", st2)
	}
}

func TestIngestMisstampedReadings(t *testing.T) {
	_, ts := freshServer(t, ingest.Config{})
	b := batchAt(10, 1, 2)
	b.Readings[1].Time = 10 + ingest.DefaultMaxSkew + 1 // beyond skew tolerance
	code, resp := postBatch(t, ts, b)
	if code != http.StatusOK {
		t.Fatalf("status %d (partial drops are not a rejection)", code)
	}
	if d, _ := resp["dropped"].(float64); d != 1 {
		t.Errorf("dropped %v, want 1", d)
	}
	if a, _ := resp["accepted"].(float64); a != 1 {
		t.Errorf("accepted %v, want 1", a)
	}
	if reason, _ := resp["reason"].(string); reason != "misstamped" {
		t.Errorf("reason = %q", reason)
	}
	var st workStats
	getJSON(t, ts, "/stats", &st)
	if st.Work.Ingest.MisstampedReadings != 1 || st.Work.ReadingsDropped != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestIngestDirectReportsRejection(t *testing.T) {
	srv, ts := freshServer(t, ingest.Config{})
	if err := srv.IngestDirect(10, batchAt(10, 1).Readings); err != nil {
		t.Fatalf("clean direct ingest: %v", err)
	}
	err := srv.IngestDirect(5, batchAt(5, 1).Readings)
	var ie *ingest.Error
	if !errors.As(err, &ie) || !ie.Rejected || ie.Kind != ingest.KindLate {
		t.Fatalf("stale direct ingest error = %v", err)
	}
	// The same counter backs the HTTP 409 path: both surfaces agree.
	var st workStats
	getJSON(t, ts, "/stats", &st)
	if st.IngestRejected != 1 {
		t.Errorf("ingestRejected = %d, want 1", st.IngestRejected)
	}
}

// lightServer builds a server over a fresh, unstreamed system — enough for
// the health/readiness and middleware tests that don't need object state.
func lightServer(t *testing.T) *Server {
	t.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	return New(engine.MustNew(plan, dep, engine.DefaultConfig()), plan, dep)
}

func TestHealthzAndReadyz(t *testing.T) {
	srv := lightServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var health struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, ts, "/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: code=%d status=%q", code, health.Status)
	}
	var ready struct {
		Status     string `json:"status"`
		Durability bool   `json:"durability"`
	}
	if code := getJSON(t, ts, "/readyz", &ready); code != http.StatusOK || ready.Status != "ok" {
		t.Fatalf("readyz: code=%d status=%q", code, ready.Status)
	}
	if ready.Durability {
		t.Error("memory-only system reported durability enabled")
	}

	// Draining: readiness flips to 503, liveness stays 200.
	srv.SetReady(false)
	if code := getJSON(t, ts, "/readyz", &ready); code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: code=%d", code)
	}
	if code := getJSON(t, ts, "/healthz", &health); code != http.StatusOK {
		t.Fatalf("draining healthz: code=%d", code)
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	srv := lightServer(t)
	h := srv.instrument("/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/boom", nil)) // must not propagate

	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: code=%d", rec.Code)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("panicking handler body: %q (decode err %v)", rec.Body.String(), err)
	}
	if got := srv.httpPanics.With("/boom").Value(); got != 1 {
		t.Fatalf("repro_http_panics_total = %d, want 1", got)
	}

	// A panic after the handler already wrote must not write a second body.
	h = srv.instrument("/late", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		panic("after write")
	})
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/late", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("post-write panic rewrote status: %d", rec.Code)
	}

	// http.ErrAbortHandler is the standard "drop this connection" signal
	// and must propagate to the HTTP server untouched.
	h = srv.instrument("/abort", func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	})
	defer func() {
		if r := recover(); r != http.ErrAbortHandler {
			t.Fatalf("ErrAbortHandler swallowed, got %v", r)
		}
	}()
	h(httptest.NewRecorder(), httptest.NewRequest("GET", "/abort", nil))
	t.Fatal("unreachable: abort panic did not propagate")
}
