package server

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// AdmissionConfig bounds the query-side concurrency of the server. The zero
// value disables admission control entirely (every request is admitted
// immediately), which is the pre-resilience behavior.
type AdmissionConfig struct {
	// MaxInFlight is the number of queries allowed past admission at once.
	// Queries serialize on the engine lock anyway, so this bounds how much
	// work can pile up behind it. 0 disables admission control.
	MaxInFlight int
	// MaxQueue is how many requests may wait for a slot beyond MaxInFlight;
	// arrivals beyond it are shed immediately with 429.
	MaxQueue int
	// MaxWait is the longest a queued request waits for a slot before being
	// shed with 429. 0 means shed immediately when no slot is free.
	MaxWait time.Duration

	// DegradedParticles, when positive, enables degraded mode: after
	// DegradeAfter sheds within RestoreAfter of each other the per-object
	// particle budget is reduced to this value (the documented Ns ablation
	// knob — cheaper filtering, coarser distributions), and restored once
	// RestoreAfter passes with no shed. The gap between the enter condition
	// (sustained shedding) and the leave condition (a full calm window) is
	// the hysteresis band that prevents flapping.
	DegradedParticles int
	// DegradeAfter is how many sheds within a RestoreAfter window trip
	// degraded mode. Values below 1 are treated as 1.
	DegradeAfter int
	// RestoreAfter is the calm period (no sheds) after which full fidelity
	// is restored, and also the window within which sheds accumulate toward
	// DegradeAfter. 0 means 30s.
	RestoreAfter time.Duration
}

// DefaultAdmissionConfig returns admission bounds suited to a single-engine
// server: a handful of in-flight queries, a short queue, and degraded mode
// halving the default particle count.
func DefaultAdmissionConfig() AdmissionConfig {
	return AdmissionConfig{
		MaxInFlight:       4,
		MaxQueue:          32,
		MaxWait:           500 * time.Millisecond,
		DegradedParticles: 32,
		DegradeAfter:      3,
		RestoreAfter:      30 * time.Second,
	}
}

// admission is the query admission controller: a slot semaphore with a
// bounded, deadline-bounded wait queue, plus the degraded-mode hysteresis
// tracker. A nil *admission admits everything (admission disabled).
type admission struct {
	cfg   AdmissionConfig
	slots chan struct{}
	// queued counts requests waiting for a slot; latencyNs is an EWMA of
	// admitted-query wall time used to estimate Retry-After.
	queued    atomic.Int64
	latencyNs atomic.Int64

	admitted *obs.Counter
	shed     *obs.Counter
	inflight *obs.Gauge
	queuedG  *obs.Gauge

	// Degraded-mode state, guarded by mu. Time flows in via the now
	// parameters so tests drive it deterministically.
	mu        sync.Mutex
	degraded  bool
	shedCount int
	lastShed  time.Time
}

// newAdmission builds the controller, registering its metrics; returns nil
// (admission disabled) when cfg.MaxInFlight is 0.
func newAdmission(cfg AdmissionConfig, reg *obs.Registry) *admission {
	if cfg.MaxInFlight <= 0 {
		return nil
	}
	if cfg.DegradeAfter < 1 {
		cfg.DegradeAfter = 1
	}
	if cfg.RestoreAfter <= 0 {
		cfg.RestoreAfter = 30 * time.Second
	}
	a := &admission{
		cfg:   cfg,
		slots: make(chan struct{}, cfg.MaxInFlight),
		admitted: reg.Counter("repro_admission_admitted_total",
			"Query requests admitted past the admission controller."),
		shed: reg.Counter("repro_admission_shed_total",
			"Query requests shed with 429 (queue full or slot wait timed out)."),
		inflight: reg.Gauge("repro_admission_inflight",
			"Query requests currently holding an admission slot."),
		queuedG: reg.Gauge("repro_admission_queued",
			"Query requests waiting for an admission slot."),
	}
	return a
}

// acquire tries to admit one request: it returns a release closure and true,
// or false when the request must be shed. The release closure must be called
// exactly once, after the query finishes.
func (a *admission) acquire() (release func(), ok bool) {
	if a == nil {
		return func() {}, true
	}
	select {
	case a.slots <- struct{}{}:
		return a.admit(), true
	default:
	}
	// No free slot: join the bounded wait queue.
	if q := a.queued.Add(1); q > int64(a.cfg.MaxQueue) {
		a.queued.Add(-1)
		a.noteShed(time.Now())
		return nil, false
	}
	a.queuedG.Set(float64(a.queued.Load()))
	defer func() {
		a.queued.Add(-1)
		a.queuedG.Set(float64(a.queued.Load()))
	}()
	timer := time.NewTimer(a.cfg.MaxWait)
	defer timer.Stop()
	if a.awaitSlot(timer.C) {
		return a.admit(), true
	}
	a.noteShed(time.Now())
	return nil, false
}

// admit records one admission and returns the release closure. The service
// clock starts here — at slot acquisition, not at arrival — so the EWMA
// behind Retry-After measures how long an admitted query holds its slot,
// not how long it also sat in the queue. Folding the queue wait in would
// inflate every congested estimate with MaxWait-sized stalls and feed the
// inflation back into ever-longer Retry-After advice.
func (a *admission) admit() (release func()) {
	a.admitted.Inc()
	a.inflight.Set(float64(len(a.slots)))
	at := time.Now()
	return func() {
		<-a.slots
		a.inflight.Set(float64(len(a.slots)))
		a.observeLatency(time.Since(at))
	}
}

// awaitSlot blocks until a slot frees or the timeout fires. When both
// channels are ready, select picks one at random — without the re-check a
// request could be shed even though a slot was free the instant the timer
// fired. Timing out therefore sheds only if a non-blocking retry still
// finds every slot taken.
func (a *admission) awaitSlot(timeout <-chan time.Time) bool {
	select {
	case a.slots <- struct{}{}:
		return true
	case <-timeout:
		select {
		case a.slots <- struct{}{}:
			return true
		default:
			return false
		}
	}
}

// observeLatency folds one admitted query's wall time into the EWMA backing
// the Retry-After estimate.
func (a *admission) observeLatency(d time.Duration) {
	const alpha = 0.2
	for {
		old := a.latencyNs.Load()
		next := int64(float64(old)*(1-alpha) + float64(d.Nanoseconds())*alpha)
		if old == 0 {
			next = d.Nanoseconds()
		}
		if a.latencyNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfterSeconds estimates how long a shed client should back off: the
// EWMA query latency times the work queued ahead of it, spread over the
// available slots, floored at one second (the header's resolution).
func (a *admission) retryAfterSeconds() int {
	lat := time.Duration(a.latencyNs.Load())
	if lat <= 0 {
		lat = 100 * time.Millisecond
	}
	backlog := float64(len(a.slots)) + float64(a.queued.Load())
	secs := lat.Seconds() * backlog / float64(a.cfg.MaxInFlight)
	n := int(math.Ceil(secs))
	if n < 1 {
		n = 1
	}
	return n
}

// retryAfterHeader is retryAfterSeconds as a header value.
func (a *admission) retryAfterHeader() string {
	return strconv.Itoa(a.retryAfterSeconds())
}

// noteShed records one shed at the given time and reports the running count
// toward the degrade threshold. Sheds further apart than RestoreAfter start
// a fresh count.
func (a *admission) noteShed(now time.Time) {
	a.shed.Inc()
	a.mu.Lock()
	if !a.lastShed.IsZero() && now.Sub(a.lastShed) > a.cfg.RestoreAfter {
		a.shedCount = 0
	}
	a.shedCount++
	a.lastShed = now
	a.mu.Unlock()
}

// degradeDecision reports whether the server should be in degraded mode as
// of now, applying the hysteresis band: enter after DegradeAfter sheds
// within the window, leave only after a full RestoreAfter of calm. It
// returns the (possibly new) state and whether it changed.
func (a *admission) degradeDecision(now time.Time) (degraded, changed bool) {
	if a == nil || a.cfg.DegradedParticles <= 0 {
		return false, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	was := a.degraded
	if !a.degraded {
		if a.shedCount >= a.cfg.DegradeAfter {
			a.degraded = true
		}
	} else if a.lastShed.IsZero() || now.Sub(a.lastShed) >= a.cfg.RestoreAfter {
		a.degraded = false
		a.shedCount = 0
	}
	return a.degraded, a.degraded != was
}
