package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/rfid"
	"repro/internal/sim"
	"repro/internal/sim/errfs"
	"repro/internal/wal"
)

// degradedServer builds a server over a durable 4-shard engine whose
// filesystem is fault-injectable, streams warm seconds through the HTTP API,
// then breaks one shard's disk and streams seconds more so the shard
// quarantines mid-service.
func degradedServer(t *testing.T) (*httptest.Server, *errfs.FS, *engine.Sharded) {
	t.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	fsys := errfs.New(nil, 23)
	cfg := engine.DefaultConfig()
	cfg.Seed = 41
	cfg.Shards = 4
	cfg.Particle.Ns = 16
	cfg.SlowQueryThreshold = 0
	cfg.Durability = engine.DurabilityConfig{
		Dir:           t.TempDir(),
		Fsync:         wal.SyncAlways,
		FS:            fsys,
		HealBaseDelay: time.Hour,
		HealMaxDelay:  time.Hour,
	}
	sys, err := engine.OpenSharded(plan, dep, cfg)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	t.Cleanup(func() { sys.Close() })
	srv := New(sys, plan, dep)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 12
	tc.DwellMin, tc.DwellMax = 2, 8
	world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 321)

	post := func(i int) (dropped float64, reason string) {
		tm, raws := world.Step()
		body, err := json.Marshal(ingestRequest{Time: tm, Readings: raws})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest second %d: status %d", i, resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		d, _ := out["dropped"].(float64)
		r, _ := out["reason"].(string)
		return d, r
	}
	for i := 0; i < 20; i++ {
		if d, _ := post(i); d != 0 {
			t.Fatalf("warm second %d dropped %v readings", i, d)
		}
	}
	fsys.Fail(errfs.Rule{Ops: errfs.OpWrite, Path: "shard-0002"})
	sawTyped := false
	for i := 20; i < 30; i++ {
		if d, reason := post(i); d > 0 {
			if reason != "quarantined" {
				t.Fatalf("drops attributed to %q, want \"quarantined\"", reason)
			}
			sawTyped = true
		}
	}
	if !sawTyped {
		t.Fatal("fault never produced a typed quarantined drop over HTTP")
	}
	return ts, fsys, sys
}

// TestReadyzDegradedMode pins the readiness contract for a partly-broken
// node: with one of four shards quarantined, /readyz stays 200 (the node
// still answers from live shards) but reports "degraded" with the shard
// list; after the fault clears and the shard heals, it returns to "ok".
func TestReadyzDegradedMode(t *testing.T) {
	ts, fsys, sys := degradedServer(t)

	var ready struct {
		Status            string `json:"status"`
		QuarantinedShards int    `json:"quarantinedShards"`
		DegradedShards    []int  `json:"degradedShards"`
	}
	if code := getJSON(t, ts, "/readyz", &ready); code != http.StatusOK {
		t.Fatalf("/readyz status %d; a 3/4-live node must stay ready", code)
	}
	if ready.Status != "degraded" || ready.QuarantinedShards != 1 ||
		len(ready.DegradedShards) != 1 || ready.DegradedShards[0] != 2 {
		t.Fatalf("degraded /readyz = %+v, want status=degraded, shard 2", ready)
	}

	fsys.Clear()
	if err := sys.HealNow(); err != nil {
		t.Fatalf("HealNow: %v", err)
	}
	ready.Status, ready.QuarantinedShards, ready.DegradedShards = "", 0, nil
	if code := getJSON(t, ts, "/readyz", &ready); code != http.StatusOK {
		t.Fatalf("/readyz status %d after heal", code)
	}
	if ready.Status != "ok" || ready.QuarantinedShards != 0 || len(ready.DegradedShards) != 0 {
		t.Fatalf("healed /readyz = %+v, want status=ok", ready)
	}
}

// TestQueriesMarkPartialWhenDegraded pins the query-side contract: while a
// shard is quarantined, /range, /knn, and /occupancy all answer 200 from the
// live shards with "partial": true and the degraded shard list; after heal
// the partial marker disappears.
func TestQueriesMarkPartialWhenDegraded(t *testing.T) {
	ts, fsys, sys := degradedServer(t)

	type partialResp struct {
		Partial        bool  `json:"partial"`
		DegradedShards []int `json:"degradedShards"`
	}
	paths := []string{"/range?x=1&y=2&w=140&h=32", "/knn?x=35&y=12&k=3", "/occupancy"}
	for _, p := range paths {
		var out partialResp
		if code := getJSON(t, ts, p, &out); code != http.StatusOK {
			t.Fatalf("%s status %d under quarantine; live shards must still answer", p, code)
		}
		if !out.Partial {
			t.Errorf("%s did not mark the answer partial", p)
		}
		if len(out.DegradedShards) != 1 || out.DegradedShards[0] != 2 {
			t.Errorf("%s degradedShards = %v, want [2]", p, out.DegradedShards)
		}
	}

	fsys.Clear()
	if err := sys.HealNow(); err != nil {
		t.Fatalf("HealNow: %v", err)
	}
	for _, p := range paths {
		var out partialResp
		if code := getJSON(t, ts, p, &out); code != http.StatusOK {
			t.Fatalf("%s status %d after heal", p, code)
		}
		if out.Partial || len(out.DegradedShards) != 0 {
			t.Errorf("%s still partial after heal: %+v", p, out)
		}
	}
}
