// Package geom provides the 2-D geometric primitives used throughout the
// indoor query system: points, line segments, axis-aligned rectangles, and
// circles, together with the distance and overlap predicates the floor plan,
// walking graph, and query modules need.
//
// All coordinates are in meters in a single floor's plan coordinate system.
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance used for geometric comparisons.
const Eps = 1e-9

// Point is a location on the floor plan, in meters.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Equal reports whether p and q coincide within Eps.
func (p Point) Equal(q Point) bool { return p.Dist(q) <= Eps }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Lerp linearly interpolates from p to q; t=0 gives p, t=1 gives q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the segment's Euclidean length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// At returns the point at parameter t along the segment; t=0 gives A,
// t=1 gives B. t is not clamped.
func (s Segment) At(t float64) Point { return s.A.Lerp(s.B, t) }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Point { return s.At(0.5) }

// Project returns the parameter t in [0, 1] of the point on the segment
// closest to p. For a degenerate (zero-length) segment it returns 0.
func (s Segment) Project(p Point) float64 {
	d := s.B.Sub(s.A)
	den := d.Dot(d)
	if den <= Eps*Eps {
		return 0
	}
	t := p.Sub(s.A).Dot(d) / den
	return clamp(t, 0, 1)
}

// ClosestPoint returns the point on the segment closest to p.
func (s Segment) ClosestPoint(p Point) Point { return s.At(s.Project(p)) }

// DistToPoint returns the Euclidean distance from p to the segment.
func (s Segment) DistToPoint(p Point) float64 {
	return s.ClosestPoint(p).Dist(p)
}

// Rect is an axis-aligned rectangle with Min at the lower-left corner and
// Max at the upper-right corner.
type Rect struct {
	Min, Max Point
}

// RectFromCorners builds a Rect from any two opposite corners, normalizing
// so that Min <= Max componentwise.
func RectFromCorners(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// RectWH builds a Rect from its lower-left corner and a width and height.
// Negative sizes are normalized away.
func RectWH(x, y, w, h float64) Rect {
	return RectFromCorners(Pt(x, y), Pt(x+w, y+h))
}

// Width returns the rectangle's horizontal extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the rectangle's vertical extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the rectangle's area. Degenerate rectangles have area 0.
func (r Rect) Area() float64 {
	w, h := r.Width(), r.Height()
	if w < 0 || h < 0 {
		return 0
	}
	return w * h
}

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Empty reports whether the rectangle has no interior (within Eps, so two
// rects that merely share a wall produce an empty intersection even under
// floating-point jitter).
func (r Rect) Empty() bool { return r.Width() <= Eps || r.Height() <= Eps }

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X-Eps && p.X <= r.Max.X+Eps &&
		p.Y >= r.Min.Y-Eps && p.Y <= r.Max.Y+Eps
}

// Intersect returns the overlap of r and o. The result may be empty.
func (r Rect) Intersect(o Rect) Rect {
	return Rect{
		Min: Point{math.Max(r.Min.X, o.Min.X), math.Max(r.Min.Y, o.Min.Y)},
		Max: Point{math.Min(r.Max.X, o.Max.X), math.Min(r.Max.Y, o.Max.Y)},
	}
}

// Overlaps reports whether r and o share interior area.
func (r Rect) Overlaps(o Rect) bool { return !r.Intersect(o).Empty() }

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, o.Min.X), math.Min(r.Min.Y, o.Min.Y)},
		Max: Point{math.Max(r.Max.X, o.Max.X), math.Max(r.Max.Y, o.Max.Y)},
	}
}

// Expand returns r grown by d on every side. Negative d shrinks.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// ClosestPoint returns the point of r closest to p (p itself when inside).
func (r Rect) ClosestPoint(p Point) Point {
	return Point{clamp(p.X, r.Min.X, r.Max.X), clamp(p.Y, r.Min.Y, r.Max.Y)}
}

// DistToPoint returns the Euclidean distance from p to r; 0 when inside.
func (r Rect) DistToPoint(p Point) float64 {
	return r.ClosestPoint(p).Dist(p)
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s - %s]", r.Min, r.Max)
}

// Circle is a disk centered at C with radius R.
type Circle struct {
	C Point
	R float64
}

// Contains reports whether p lies inside the circle (boundary inclusive).
func (c Circle) Contains(p Point) bool { return c.C.Dist(p) <= c.R+Eps }

// OverlapsRect reports whether the circle and rectangle share any point.
func (c Circle) OverlapsRect(r Rect) bool {
	return r.DistToPoint(c.C) <= c.R+Eps
}

// OverlapsSegment reports whether the circle intersects the segment.
func (c Circle) OverlapsSegment(s Segment) bool {
	return s.DistToPoint(c.C) <= c.R+Eps
}

// SegmentIntersection returns the parameter interval [t0, t1] of s that lies
// inside the circle, and ok=false when the segment misses the circle. The
// parameters are clamped to [0, 1].
func (c Circle) SegmentIntersection(s Segment) (t0, t1 float64, ok bool) {
	d := s.B.Sub(s.A)
	f := s.A.Sub(c.C)
	a := d.Dot(d)
	if a <= Eps*Eps {
		// Degenerate segment: a point.
		if c.Contains(s.A) {
			return 0, 0, true
		}
		return 0, 0, false
	}
	b := 2 * f.Dot(d)
	cc := f.Dot(f) - c.R*c.R
	disc := b*b - 4*a*cc
	if disc < 0 {
		return 0, 0, false
	}
	sq := math.Sqrt(disc)
	t0 = (-b - sq) / (2 * a)
	t1 = (-b + sq) / (2 * a)
	if t1 < 0 || t0 > 1 {
		return 0, 0, false
	}
	return clamp(t0, 0, 1), clamp(t1, 0, 1), true
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
