package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return a == b || math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		return almostEq(a.Dist(b), b.Dist(a)) && a.Dist(b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := Pt(1, 1), Pt(5, -3)
	if !a.Lerp(b, 0).Equal(a) || !a.Lerp(b, 1).Equal(b) {
		t.Error("Lerp endpoints wrong")
	}
	if !a.Lerp(b, 0.5).Equal(Pt(3, -1)) {
		t.Error("Lerp midpoint wrong")
	}
}

func TestSegmentLengthAndAt(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(3, 4))
	if !almostEq(s.Length(), 5) {
		t.Errorf("Length = %v", s.Length())
	}
	if !s.At(0.5).Equal(Pt(1.5, 2)) {
		t.Errorf("At(0.5) = %v", s.At(0.5))
	}
	if !s.Midpoint().Equal(Pt(1.5, 2)) {
		t.Errorf("Midpoint = %v", s.Midpoint())
	}
}

func TestSegmentProject(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 3), 0.5},
		{Pt(-2, 1), 0},  // beyond A clamps to 0
		{Pt(14, -1), 1}, // beyond B clamps to 1
		{Pt(2.5, 0), 0.25},
	}
	for _, c := range cases {
		if got := s.Project(c.p); !almostEq(got, c.want) {
			t.Errorf("Project(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSegmentProjectDegenerate(t *testing.T) {
	s := Seg(Pt(2, 2), Pt(2, 2))
	if got := s.Project(Pt(9, 9)); got != 0 {
		t.Errorf("degenerate Project = %v, want 0", got)
	}
	if !almostEq(s.DistToPoint(Pt(5, 6)), 5) {
		t.Errorf("degenerate DistToPoint = %v", s.DistToPoint(Pt(5, 6)))
	}
}

func TestSegmentClosestPointIsClosest(t *testing.T) {
	// Property: the returned point is at least as close as any sampled point
	// on the segment.
	f := func(ax, ay, bx, by, px, py float64) bool {
		s := Seg(Pt(ax, ay), Pt(bx, by))
		p := Pt(px, py)
		best := s.DistToPoint(p)
		for i := 0; i <= 20; i++ {
			if s.At(float64(i)/20).Dist(p) < best-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRectNormalization(t *testing.T) {
	r := RectFromCorners(Pt(5, 7), Pt(1, 2))
	if r.Min != Pt(1, 2) || r.Max != Pt(5, 7) {
		t.Errorf("RectFromCorners did not normalize: %v", r)
	}
	r2 := RectWH(3, 3, -2, -1)
	if r2.Min != Pt(1, 2) || r2.Max != Pt(3, 3) {
		t.Errorf("RectWH negative size not normalized: %v", r2)
	}
}

func TestRectAreaAndCenter(t *testing.T) {
	r := RectWH(1, 2, 4, 3)
	if !almostEq(r.Area(), 12) {
		t.Errorf("Area = %v", r.Area())
	}
	if !r.Center().Equal(Pt(3, 3.5)) {
		t.Errorf("Center = %v", r.Center())
	}
	if !almostEq(r.Width(), 4) || !almostEq(r.Height(), 3) {
		t.Errorf("Width/Height = %v/%v", r.Width(), r.Height())
	}
}

func TestRectContains(t *testing.T) {
	r := RectWH(0, 0, 10, 5)
	if !r.Contains(Pt(5, 2)) || !r.Contains(Pt(0, 0)) || !r.Contains(Pt(10, 5)) {
		t.Error("Contains failed for inside/boundary points")
	}
	if r.Contains(Pt(10.1, 2)) || r.Contains(Pt(-0.1, 2)) {
		t.Error("Contains accepted outside points")
	}
}

func TestRectIntersect(t *testing.T) {
	a := RectWH(0, 0, 10, 10)
	b := RectWH(5, 5, 10, 10)
	got := a.Intersect(b)
	if got.Min != Pt(5, 5) || got.Max != Pt(10, 10) {
		t.Errorf("Intersect = %v", got)
	}
	c := RectWH(20, 20, 1, 1)
	if !a.Intersect(c).Empty() {
		t.Error("disjoint rect intersection not empty")
	}
	if a.Overlaps(c) {
		t.Error("Overlaps true for disjoint rects")
	}
	if !a.Overlaps(b) {
		t.Error("Overlaps false for overlapping rects")
	}
}

func TestRectIntersectCommutativeAndBounded(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := RectWH(ax, ay, math.Abs(aw), math.Abs(ah))
		b := RectWH(bx, by, math.Abs(bw), math.Abs(bh))
		i1, i2 := a.Intersect(b), b.Intersect(a)
		if i1 != i2 {
			return false
		}
		// Area of intersection never exceeds either area.
		return i1.Area() <= a.Area()+1e-9 && i1.Area() <= b.Area()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRectUnionContainsBoth(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := RectWH(ax, ay, math.Abs(aw), math.Abs(ah))
		b := RectWH(bx, by, math.Abs(bw), math.Abs(bh))
		u := a.Union(b)
		return u.Contains(a.Min) && u.Contains(a.Max) &&
			u.Contains(b.Min) && u.Contains(b.Max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRectExpand(t *testing.T) {
	r := RectWH(2, 2, 4, 4).Expand(1)
	if r.Min != Pt(1, 1) || r.Max != Pt(7, 7) {
		t.Errorf("Expand = %v", r)
	}
}

func TestRectDistToPoint(t *testing.T) {
	r := RectWH(0, 0, 10, 10)
	if !almostEq(r.DistToPoint(Pt(5, 5)), 0) {
		t.Error("inside point distance != 0")
	}
	if !almostEq(r.DistToPoint(Pt(13, 14)), 5) {
		t.Errorf("corner distance = %v, want 5", r.DistToPoint(Pt(13, 14)))
	}
	if !almostEq(r.DistToPoint(Pt(-3, 5)), 3) {
		t.Errorf("edge distance = %v, want 3", r.DistToPoint(Pt(-3, 5)))
	}
}

func TestCircleContains(t *testing.T) {
	c := Circle{C: Pt(0, 0), R: 2}
	if !c.Contains(Pt(1, 1)) || !c.Contains(Pt(2, 0)) {
		t.Error("Contains failed")
	}
	if c.Contains(Pt(2, 1)) {
		t.Error("Contains accepted outside point")
	}
}

func TestCircleOverlapsRect(t *testing.T) {
	c := Circle{C: Pt(0, 0), R: 2}
	if !c.OverlapsRect(RectWH(1, 1, 5, 5)) {
		t.Error("overlapping rect reported disjoint")
	}
	if c.OverlapsRect(RectWH(3, 3, 5, 5)) {
		t.Error("disjoint rect reported overlapping")
	}
	// Circle entirely inside the rect.
	if !c.OverlapsRect(RectWH(-10, -10, 20, 20)) {
		t.Error("containing rect reported disjoint")
	}
}

func TestCircleSegmentIntersection(t *testing.T) {
	c := Circle{C: Pt(5, 0), R: 1}
	s := Seg(Pt(0, 0), Pt(10, 0))
	t0, t1, ok := c.SegmentIntersection(s)
	if !ok {
		t.Fatal("expected intersection")
	}
	if !almostEq(t0, 0.4) || !almostEq(t1, 0.6) {
		t.Errorf("interval = [%v, %v], want [0.4, 0.6]", t0, t1)
	}
	// Segment that misses.
	if _, _, ok := c.SegmentIntersection(Seg(Pt(0, 5), Pt(10, 5))); ok {
		t.Error("miss reported as hit")
	}
	// Segment ending inside the circle.
	t0, t1, ok = c.SegmentIntersection(Seg(Pt(0, 0), Pt(5, 0)))
	if !ok || !almostEq(t0, 0.8) || !almostEq(t1, 1.0) {
		t.Errorf("partial interval = [%v, %v, %v]", t0, t1, ok)
	}
	// Degenerate segment inside / outside.
	if _, _, ok := c.SegmentIntersection(Seg(Pt(5, 0), Pt(5, 0))); !ok {
		t.Error("degenerate inside reported miss")
	}
	if _, _, ok := c.SegmentIntersection(Seg(Pt(9, 9), Pt(9, 9))); ok {
		t.Error("degenerate outside reported hit")
	}
}

func TestCircleSegmentIntersectionConsistentWithOverlap(t *testing.T) {
	// Map arbitrary floats into a modest coordinate range to avoid overflow
	// in the quadratic-formula arithmetic.
	bound := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 100)
	}
	f := func(cx, cy, r, ax, ay, bx, by float64) bool {
		c := Circle{C: Pt(bound(cx), bound(cy)), R: math.Abs(bound(r))}
		s := Seg(Pt(bound(ax), bound(ay)), Pt(bound(bx), bound(by)))
		_, _, ok := c.SegmentIntersection(s)
		// SegmentIntersection and OverlapsSegment must agree (allowing
		// tangency tolerance differences near the boundary).
		near := math.Abs(s.DistToPoint(c.C)-c.R) < 1e-6
		return near || ok == c.OverlapsSegment(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if clamp(5, 0, 1) != 1 || clamp(-5, 0, 1) != 0 || clamp(0.5, 0, 1) != 0.5 {
		t.Error("clamp broken")
	}
}
