// Package query implements the paper's query evaluation module: indoor range
// queries (Algorithm 3) and indoor kNN queries (Algorithm 4) over the
// APtoObjHT anchor-point index, plus the query aware optimization module's
// candidate pruning for both query types.
package query

import (
	"context"
	"math"
	"sort"

	"repro/internal/anchor"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/walkgraph"
)

// Evaluator answers range and kNN queries against an anchor-point table.
type Evaluator struct {
	g   *walkgraph.Graph
	idx *anchor.Index
}

// NewEvaluator builds an Evaluator over a walking graph and its anchor
// index.
func NewEvaluator(g *walkgraph.Graph, idx *anchor.Index) *Evaluator {
	return &Evaluator{g: g, idx: idx}
}

// Range evaluates an indoor range query (the paper's Algorithm 3). Anchor
// points are the 1-D projection of the 2-D indoor space, so the lost
// dimension is compensated per intersected cell: hallway probabilities are
// scaled by the fraction of the hallway width the query covers, and room
// probabilities by the fraction of the room area it covers.
func (e *Evaluator) Range(tab *anchor.Table, q geom.Rect) model.ResultSet {
	rs, _ := e.rangeCtx(nil, tab, q)
	return rs
}

// RangeContext is Range with a per-request deadline: the context is checked
// at every hallway- and room-cell boundary, and on expiry the result
// accumulated so far is returned together with a *DeadlineError. A nil error
// means the result is complete.
func (e *Evaluator) RangeContext(ctx context.Context, tab *anchor.Table, q geom.Rect) (model.ResultSet, error) {
	return e.rangeCtx(ctx, tab, q)
}

// rangeCtx is the shared implementation; a nil ctx skips every check and is
// byte-for-byte the pre-deadline behavior.
func (e *Evaluator) rangeCtx(ctx context.Context, tab *anchor.Table, q geom.Rect) (model.ResultSet, error) {
	resultSet := make(model.ResultSet)
	plan := e.g.Plan()

	// Hallway cells.
	for _, h := range plan.Hallways() {
		if err := expired(ctx, "range/hallways"); err != nil {
			return resultSet, err
		}
		strip := h.Strip()
		overlap := strip.Intersect(q)
		if overlap.Empty() {
			continue
		}
		var ratio, lo, hi float64
		if h.Horizontal() {
			ratio = overlap.Height() / h.Width
			lo, hi = overlap.Min.X, overlap.Max.X
		} else {
			ratio = overlap.Width() / h.Width
			lo, hi = overlap.Min.Y, overlap.Max.Y
		}
		result := make(model.ResultSet)
		for _, a := range e.idx.Anchors() {
			if a.Hallway != h.ID {
				continue
			}
			coord := a.Pos.X
			if !h.Horizontal() {
				coord = a.Pos.Y
			}
			if coord >= lo && coord <= hi {
				result.Add(tab.Get(a.ID))
			}
		}
		result.Scale(ratio)
		resultSet.Add(result)
	}

	// Room cells: the covered fraction of the room's footprint (which may be
	// a composite of several rectangles).
	for _, room := range plan.Rooms() {
		if err := expired(ctx, "range/rooms"); err != nil {
			return resultSet, err
		}
		covered := room.IntersectArea(q)
		if covered <= 0 {
			continue
		}
		ap := e.idx.RoomAnchor(room.ID)
		if ap == anchor.NoAnchor {
			continue
		}
		result := tab.Get(ap).Clone()
		result.Scale(covered / room.Area())
		resultSet.Add(result)
	}
	return resultSet, nil
}

// KNN evaluates an indoor kNN query (the paper's Algorithm 4): starting from
// the query point (approximated onto the nearest walking-graph edge), anchor
// points are visited in ascending shortest network distance, accumulating
// each anchor's indexed objects, until the total probability of the result
// set reaches k. The result holds at least k objects (probability mass k)
// whenever the table contains that much mass.
func (e *Evaluator) KNN(tab *anchor.Table, q geom.Point, k int) model.ResultSet {
	rs, _ := e.knnCtx(nil, tab, q, k)
	return rs
}

// KNNContext is KNN with a per-request deadline, checked every
// deadlineStride anchors of the distance-ordered scan. On expiry the mass
// accumulated so far (possibly < k) is returned with a *DeadlineError.
func (e *Evaluator) KNNContext(ctx context.Context, tab *anchor.Table, q geom.Point, k int) (model.ResultSet, error) {
	return e.knnCtx(ctx, tab, q, k)
}

func (e *Evaluator) knnCtx(ctx context.Context, tab *anchor.Table, q geom.Point, k int) (model.ResultSet, error) {
	resultSet := make(model.ResultSet)
	if k <= 0 {
		return resultSet, nil
	}
	loc := e.g.NearestLocation(q)
	ids, _ := e.idx.AnchorsByNetworkDistance(loc)
	for i, ap := range ids {
		if i%deadlineStride == 0 {
			if err := expired(ctx, "knn/anchor-scan"); err != nil {
				return resultSet, err
			}
		}
		entry := tab.Get(ap)
		if len(entry) == 0 {
			continue
		}
		resultSet.Add(entry)
		if resultSet.TotalProb() >= float64(k) {
			break
		}
	}
	return resultSet, nil
}

// TopKObjects ranks a probabilistic result set by descending probability and
// returns the k most likely objects (ties to lower IDs). It converts the
// paper's probabilistic kNN answer into a concrete set for hit-rate style
// metrics.
func TopKObjects(rs model.ResultSet, k int) []model.ObjectID {
	type op struct {
		o model.ObjectID
		p float64
	}
	all := make([]op, 0, len(rs))
	for o, p := range rs {
		all = append(all, op{o: o, p: p})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].p != all[j].p {
			return all[i].p > all[j].p
		}
		return all[i].o < all[j].o
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]model.ObjectID, k)
	for i := range out {
		out[i] = all[i].o
	}
	return out
}

// ObjectInfo is the pruning-relevant summary of an object: its most recent
// detecting device and when it was last read.
type ObjectInfo struct {
	Object   model.ObjectID
	Reader   model.ReaderID
	LastSeen model.Time
}

// Pruner implements the query aware optimization module: it filters out
// non-candidate objects that cannot appear in any registered query's result.
type Pruner struct {
	g   *walkgraph.Graph
	idx *anchor.Index
	dep *rfid.Deployment
	// umax is the maximum walking speed used to grow uncertain regions.
	umax float64
	// unhealthy flags readers whose last detection may be stale beyond its
	// timestamp (the device went SUSPECT/DEAD after reading the object), so
	// their uncertain regions are widened to keep pruning sound. nil when all
	// readers are healthy.
	unhealthy []bool
}

// NewPruner builds a Pruner.
func NewPruner(g *walkgraph.Graph, idx *anchor.Index, dep *rfid.Deployment, umax float64) *Pruner {
	return &Pruner{g: g, idx: idx, dep: dep, umax: umax}
}

// SetUnhealthy installs the unhealthy-reader set (indexed by ReaderID; nil or
// all-false restores the uncompensated regions). The caller must not mutate
// the slice afterwards or call this concurrently with candidate generation.
func (p *Pruner) SetUnhealthy(un []bool) {
	any := false
	for _, u := range un {
		if u {
			any = true
			break
		}
	}
	if !any {
		un = nil
	}
	p.unhealthy = un
}

// UncertainRegion returns the Euclidean uncertain region UR(o): a circle
// centered at the object's last detecting device with radius
// umax * (now - lastSeen) + device range.
//
// When the last detecting device is unhealthy the radius gains one extra
// device range: the object may have left the range unnoticed any time after
// the last read (the usual exit event that re-anchors UR never arrived), so
// the region is grown by the largest silent head start the dead range can
// hide. Time-based growth already covers travel after that instant.
func (p *Pruner) UncertainRegion(info ObjectInfo, now model.Time) geom.Circle {
	r := p.dep.Reader(info.Reader)
	lmax := p.umax * float64(now-info.LastSeen)
	if lmax < 0 {
		lmax = 0
	}
	rad := lmax + r.Range
	if p.unhealthy != nil && int(info.Reader) < len(p.unhealthy) && p.unhealthy[info.Reader] {
		rad += r.Range
	}
	return geom.Circle{C: r.Pos, R: rad}
}

// RangeCandidates returns the objects whose uncertain regions overlap at
// least one of the query windows; all others are non-candidates whose
// filtering cost is saved.
func (p *Pruner) RangeCandidates(infos []ObjectInfo, windows []geom.Rect, now model.Time) []model.ObjectID {
	out, _ := p.rangeCandidatesCtx(nil, infos, windows, now)
	return out
}

// RangeCandidatesContext is RangeCandidates with a per-request deadline,
// checked once per object. On expiry it fails conservatively: the remaining
// unexamined objects are all admitted as candidates (pruning is an
// optimization; an incomplete prune must never drop a possible answer), and
// the *DeadlineError is returned so the caller can account for the overrun.
func (p *Pruner) RangeCandidatesContext(ctx context.Context, infos []ObjectInfo, windows []geom.Rect, now model.Time) ([]model.ObjectID, error) {
	return p.rangeCandidatesCtx(ctx, infos, windows, now)
}

func (p *Pruner) rangeCandidatesCtx(ctx context.Context, infos []ObjectInfo, windows []geom.Rect, now model.Time) ([]model.ObjectID, error) {
	var out []model.ObjectID
	for n, info := range infos {
		if err := expired(ctx, "prune/range"); err != nil {
			for _, rest := range infos[n:] {
				out = append(out, rest.Object)
			}
			return out, err
		}
		ur := p.UncertainRegion(info, now)
		for _, w := range windows {
			if ur.OverlapsRect(w) {
				out = append(out, info.Object)
				break
			}
		}
	}
	return out, nil
}

// KNNCandidates implements the paper's distance-based pruning: with
// s_i (l_i) the minimum (maximum) shortest network distance from the query
// point to UR(o_i), and f the k-th smallest l_i, every object with s_i > f
// is pruned — at least k objects are certainly closer.
func (p *Pruner) KNNCandidates(infos []ObjectInfo, q geom.Point, k int, now model.Time) []model.ObjectID {
	out, _ := p.knnCandidatesCtx(nil, infos, q, k, now)
	return out
}

// KNNCandidatesContext is KNNCandidates with a per-request deadline, checked
// once per object during bound computation. On expiry every object is
// admitted (the distance threshold cannot be established from partial
// bounds, and pruning must stay sound) and the *DeadlineError is returned.
func (p *Pruner) KNNCandidatesContext(ctx context.Context, infos []ObjectInfo, q geom.Point, k int, now model.Time) ([]model.ObjectID, error) {
	return p.knnCandidatesCtx(ctx, infos, q, k, now)
}

func (p *Pruner) knnCandidatesCtx(ctx context.Context, infos []ObjectInfo, q geom.Point, k int, now model.Time) ([]model.ObjectID, error) {
	if len(infos) == 0 {
		return nil, nil
	}
	loc := p.g.NearestLocation(q)
	nodeDist := p.g.DistancesFromLocation(loc)

	type bounds struct {
		obj    model.ObjectID
		si, li float64
	}
	bs := make([]bounds, 0, len(infos))
	ls := make([]float64, 0, len(infos))
	for _, info := range infos {
		if err := expired(ctx, "prune/knn"); err != nil {
			out := make([]model.ObjectID, len(infos))
			for i := range infos {
				out[i] = infos[i].Object
			}
			return out, err
		}
		ur := p.UncertainRegion(info, now)
		si, li := math.Inf(1), 0.0
		for _, a := range p.idx.Anchors() {
			if !ur.Contains(a.Pos) {
				continue
			}
			d := p.g.DistToLocation(loc, nodeDist, a.Loc)
			if d < si {
				si = d
			}
			if d > li {
				li = d
			}
		}
		if math.IsInf(si, 1) {
			// The region is too small to contain an anchor; bound through
			// the device center instead.
			reader := p.dep.Reader(info.Reader)
			center := p.g.NearestLocation(reader.Pos)
			d := p.g.DistToLocation(loc, nodeDist, center)
			si = math.Max(0, d-ur.R)
			li = d + ur.R
		}
		bs = append(bs, bounds{obj: info.Object, si: si, li: li})
		ls = append(ls, li)
	}
	sort.Float64s(ls)
	idx := k - 1
	if idx >= len(ls) {
		idx = len(ls) - 1
	}
	f := ls[idx]
	var out []model.ObjectID
	for _, b := range bs {
		if b.si <= f {
			out = append(out, b.obj)
		}
	}
	return out, nil
}

// RoomOf exposes the plan lookup used by ground-truth helpers: the room
// containing pt, or floorplan.NoRoom.
func (e *Evaluator) RoomOf(pt geom.Point) floorplan.RoomID {
	return e.g.Plan().RoomAt(pt)
}
