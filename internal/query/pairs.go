package query

import (
	"sort"

	"repro/internal/anchor"
	"repro/internal/model"
)

// This file implements the closest-pairs query the paper lists as future
// work (Section 6): find the k pairs of objects with the smallest expected
// shortest network distance under their anchor-point distributions.

// Pair is one closest-pairs result: two objects and the expected shortest
// network distance between them.
type Pair struct {
	A, B model.ObjectID
	Dist float64
}

// ClosestPairs returns the k object pairs with the smallest expected network
// distance E[d(A,B)] = sum_a sum_b pA(a) pB(b) d(a,b) over their anchor
// distributions. Results are sorted by ascending distance (ties by IDs).
// Anchor-to-anchor distances are computed once per distinct source anchor
// via single-source Dijkstra and memoized inside the call.
func (e *Evaluator) ClosestPairs(tab *anchor.Table, k int) []Pair {
	objs := tab.Objects()
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	if k <= 0 || len(objs) < 2 {
		return nil
	}

	// Memoized network distances from each needed anchor to all anchors.
	distFrom := make(map[anchor.ID][]float64)
	anchorDists := func(from anchor.ID) []float64 {
		if d, ok := distFrom[from]; ok {
			return d
		}
		loc := e.idx.Anchor(from).Loc
		nd := e.g.DistancesFromLocation(loc)
		d := make([]float64, e.idx.NumAnchors())
		for _, a := range e.idx.Anchors() {
			d[a.ID] = e.g.DistToLocation(loc, nd, a.Loc)
		}
		distFrom[from] = d
		return d
	}

	var pairs []Pair
	for i := 0; i < len(objs); i++ {
		distA := tab.DistributionOf(objs[i])
		if len(distA) == 0 {
			continue
		}
		for j := i + 1; j < len(objs); j++ {
			distB := tab.DistributionOf(objs[j])
			if len(distB) == 0 {
				continue
			}
			expected := 0.0
			for a, pa := range distA {
				da := anchorDists(a)
				for b, pb := range distB {
					expected += pa * pb * da[b]
				}
			}
			pairs = append(pairs, Pair{A: objs[i], B: objs[j], Dist: expected})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Dist != pairs[j].Dist {
			return pairs[i].Dist < pairs[j].Dist
		}
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	if k > len(pairs) {
		k = len(pairs)
	}
	return pairs[:k]
}
