package query

import (
	"context"
	"fmt"
)

// deadlineStride is how many anchor-scan iterations run between context
// checks: coarse enough to keep the check off the profile, fine enough that
// an expired request stops within microseconds.
const deadlineStride = 64

// DeadlineError reports that a query ran out of its per-request budget. The
// result returned alongside it is a usable partial: for the evaluator it
// holds everything accumulated before expiry; for the pruner it is a
// superset of the exact candidates (pruning fails open, never dropping a
// possible answer). Stage names the loop that hit the deadline, e.g.
// "knn/anchor-scan" or "prune/range". Unwrap exposes the context error, so
// errors.Is(err, context.DeadlineExceeded) works as usual.
type DeadlineError struct {
	Stage string
	Err   error
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("query: deadline exceeded at %s: %v", e.Stage, e.Err)
}

func (e *DeadlineError) Unwrap() error { return e.Err }

// expired returns a *DeadlineError when ctx is done; a nil ctx (the
// deadline-free fast path used by the legacy entry points) never expires.
func expired(ctx context.Context, stage string) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return &DeadlineError{Stage: stage, Err: err}
	}
	return nil
}
