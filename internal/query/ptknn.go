package query

import (
	"sort"

	"repro/internal/anchor"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rng"
)

// This file implements the Indoor Probabilistic Threshold kNN Query the
// paper formally cites from Yang et al. [30]: find the objects whose
// probability of belonging to the kNN result set exceeds a threshold T.
// Membership probabilities are estimated by Monte Carlo over the objects'
// anchor-point distributions: each trial samples one position per object,
// ranks them by network distance from the query point, and tallies per-
// object top-k membership.

// PTKNNResult is one PTkNN answer entry: an object and its estimated
// probability of being among the k nearest neighbors.
type PTKNNResult struct {
	Object model.ObjectID
	P      float64
}

// PTKNN evaluates a probabilistic threshold kNN query over a table of
// object distributions: it returns every object whose kNN-membership
// probability is at least threshold, sorted by descending probability
// (ties to lower IDs). trials controls the Monte Carlo precision.
func (e *Evaluator) PTKNN(src *rng.Source, tab *anchor.Table, q geom.Point, k int, threshold float64, trials int) []PTKNNResult {
	probs := e.KNNMembership(src, tab, q, k, trials)
	out := make([]PTKNNResult, 0, len(probs))
	for obj, p := range probs {
		if p >= threshold {
			out = append(out, PTKNNResult{Object: obj, P: p})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		return out[i].Object < out[j].Object
	})
	return out
}

// KNNMembership estimates, for every object in the table, the probability
// that it belongs to the kNN result set of q.
func (e *Evaluator) KNNMembership(src *rng.Source, tab *anchor.Table, q geom.Point, k int, trials int) map[model.ObjectID]float64 {
	objs := tab.Objects()
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	if len(objs) == 0 || k <= 0 || trials <= 0 {
		return nil
	}
	if k > len(objs) {
		k = len(objs)
	}

	// Anchor distances from the query point, computed once.
	loc := e.g.NearestLocation(q)
	ids, ds := e.idx.AnchorsByNetworkDistance(loc)
	anchorDist := make([]float64, e.idx.NumAnchors())
	for i, id := range ids {
		anchorDist[id] = ds[i]
	}

	// Flatten each object's distribution for deterministic sampling.
	type objDist struct {
		obj     model.ObjectID
		anchors []anchor.ID
		weights []float64
	}
	flat := make([]objDist, 0, len(objs))
	for _, obj := range objs {
		dist := tab.DistributionOf(obj)
		if len(dist) == 0 {
			continue
		}
		od := objDist{obj: obj}
		for ap := range dist {
			od.anchors = append(od.anchors, ap)
		}
		sort.Slice(od.anchors, func(i, j int) bool { return od.anchors[i] < od.anchors[j] })
		od.weights = make([]float64, len(od.anchors))
		for i, ap := range od.anchors {
			od.weights[i] = dist[ap]
		}
		flat = append(flat, od)
	}
	if len(flat) == 0 {
		return nil
	}

	hits := make(map[model.ObjectID]int, len(flat))
	type ranked struct {
		obj model.ObjectID
		d   float64
	}
	buf := make([]ranked, len(flat))
	for trial := 0; trial < trials; trial++ {
		for i, od := range flat {
			ap := od.anchors[src.Categorical(od.weights)]
			buf[i] = ranked{obj: od.obj, d: anchorDist[ap]}
		}
		sort.Slice(buf, func(i, j int) bool {
			if buf[i].d != buf[j].d {
				return buf[i].d < buf[j].d
			}
			return buf[i].obj < buf[j].obj
		})
		limit := k
		if limit > len(buf) {
			limit = len(buf)
		}
		for i := 0; i < limit; i++ {
			hits[buf[i].obj]++
		}
	}
	probs := make(map[model.ObjectID]float64, len(hits))
	for obj, n := range hits {
		probs[obj] = float64(n) / float64(trials)
	}
	return probs
}
