package query

import (
	"math"
	"testing"

	"repro/internal/anchor"
	"repro/internal/geom"
	"repro/internal/model"
)

func TestContinuousRangeDeltas(t *testing.T) {
	c := NewContinuousRange(geom.RectWH(0, 0, 10, 10), 0.5)
	entered, left := c.Update(model.ResultSet{1: 0.8, 2: 0.3})
	if len(entered) != 1 || entered[0] != 1 || len(left) != 0 {
		t.Fatalf("first update: entered=%v left=%v", entered, left)
	}
	// Object 2 rises above threshold, object 1 drops below.
	entered, left = c.Update(model.ResultSet{1: 0.2, 2: 0.9})
	if len(entered) != 1 || entered[0] != 2 {
		t.Errorf("entered = %v", entered)
	}
	if len(left) != 1 || left[0] != 1 {
		t.Errorf("left = %v", left)
	}
	// No changes.
	entered, left = c.Update(model.ResultSet{2: 0.9})
	if len(entered) != 0 || len(left) != 0 {
		t.Errorf("steady state: entered=%v left=%v", entered, left)
	}
	if res := c.Result(); len(res) != 1 || res[0] != 2 {
		t.Errorf("Result = %v", res)
	}
}

func TestContinuousRangeEmptyUpdates(t *testing.T) {
	c := NewContinuousRange(geom.RectWH(0, 0, 5, 5), 0.5)
	if e, l := c.Update(nil); len(e) != 0 || len(l) != 0 {
		t.Errorf("empty first update: %v %v", e, l)
	}
	c.Update(model.ResultSet{3: 0.9})
	e, l := c.Update(nil)
	if len(e) != 0 || len(l) != 1 || l[0] != 3 {
		t.Errorf("empty after member: entered=%v left=%v", e, l)
	}
}

func TestContinuousRangeSortedOutput(t *testing.T) {
	c := NewContinuousRange(geom.RectWH(0, 0, 5, 5), 0.5)
	entered, _ := c.Update(model.ResultSet{9: 0.9, 2: 0.8, 5: 0.7})
	for i := 1; i < len(entered); i++ {
		if entered[i] < entered[i-1] {
			t.Fatalf("entered not sorted: %v", entered)
		}
	}
}

func TestContinuousKNNDeltas(t *testing.T) {
	c := NewContinuousKNN(geom.Pt(5, 5), 2)
	added, removed := c.Update(model.ResultSet{1: 0.9, 2: 0.8, 3: 0.1})
	if len(added) != 2 || added[0] != 1 || added[1] != 2 || len(removed) != 0 {
		t.Fatalf("first update: added=%v removed=%v", added, removed)
	}
	// Object 3 overtakes object 2.
	added, removed = c.Update(model.ResultSet{1: 0.9, 2: 0.2, 3: 0.8})
	if len(added) != 1 || added[0] != 3 {
		t.Errorf("added = %v", added)
	}
	if len(removed) != 1 || removed[0] != 2 {
		t.Errorf("removed = %v", removed)
	}
	if res := c.Result(); len(res) != 2 || res[0] != 1 || res[1] != 3 {
		t.Errorf("Result = %v", res)
	}
}

func TestClosestPairsPointMasses(t *testing.T) {
	g, idx, _ := corridor(t)
	e := NewEvaluator(g, idx)
	tab := anchor.NewTable()
	// Three point-mass objects at x ~ 5, 7, 30 on the hallway.
	a5 := hallwayAnchorNear(t, idx, 5)
	a7 := hallwayAnchorNear(t, idx, 7)
	a30 := hallwayAnchorNear(t, idx, 30)
	tab.Add(a5, 1, 1)
	tab.Add(a7, 2, 1)
	tab.Add(a30, 3, 1)
	pairs := e.ClosestPairs(tab, 3)
	if len(pairs) != 3 {
		t.Fatalf("pairs = %v", pairs)
	}
	if pairs[0].A != 1 || pairs[0].B != 2 {
		t.Errorf("closest pair = %+v, want (1,2)", pairs[0])
	}
	wantDist := idx.Anchor(a5).Pos.Dist(idx.Anchor(a7).Pos)
	if math.Abs(pairs[0].Dist-wantDist) > 1e-9 {
		t.Errorf("closest distance = %v, want %v", pairs[0].Dist, wantDist)
	}
	// Distances ascend.
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Dist < pairs[i-1].Dist {
			t.Fatalf("pairs not sorted: %v", pairs)
		}
	}
}

func TestClosestPairsExpectedDistance(t *testing.T) {
	g, idx, _ := corridor(t)
	e := NewEvaluator(g, idx)
	tab := anchor.NewTable()
	// Object 1 split between x~5 (p=0.5) and x~9 (p=0.5); object 2 at x~15.
	a5 := hallwayAnchorNear(t, idx, 5)
	a9 := hallwayAnchorNear(t, idx, 9)
	a15 := hallwayAnchorNear(t, idx, 15)
	tab.Add(a5, 1, 0.5)
	tab.Add(a9, 1, 0.5)
	tab.Add(a15, 2, 1)
	pairs := e.ClosestPairs(tab, 1)
	if len(pairs) != 1 {
		t.Fatal("no pair")
	}
	want := 0.5*idx.Anchor(a5).Pos.Dist(idx.Anchor(a15).Pos) +
		0.5*idx.Anchor(a9).Pos.Dist(idx.Anchor(a15).Pos)
	if math.Abs(pairs[0].Dist-want) > 1e-9 {
		t.Errorf("expected distance = %v, want %v", pairs[0].Dist, want)
	}
}

func TestClosestPairsEdgeCases(t *testing.T) {
	g, idx, _ := corridor(t)
	e := NewEvaluator(g, idx)
	tab := anchor.NewTable()
	if got := e.ClosestPairs(tab, 3); got != nil {
		t.Errorf("empty table pairs = %v", got)
	}
	tab.Add(hallwayAnchorNear(t, idx, 5), 1, 1)
	if got := e.ClosestPairs(tab, 3); got != nil {
		t.Errorf("single object pairs = %v", got)
	}
	tab.Add(hallwayAnchorNear(t, idx, 9), 2, 1)
	if got := e.ClosestPairs(tab, 0); got != nil {
		t.Errorf("k=0 pairs = %v", got)
	}
	// k larger than the pair count clamps.
	if got := e.ClosestPairs(tab, 99); len(got) != 1 {
		t.Errorf("oversized k pairs = %v", got)
	}
}
