package query

import (
	"math"
	"testing"

	"repro/internal/anchor"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/walkgraph"
)

// corridor: 40 m hallway (strip y in [9,11]) with a south room R0
// (x 12..18, y 3..9) and a north room R1 (x 24..30, y 11..17), plus three
// readers at x = 10, 20, 30 with 2 m activation ranges.
func corridor(t *testing.T) (*walkgraph.Graph, *anchor.Index, *rfid.Deployment) {
	t.Helper()
	b := floorplan.NewBuilder()
	h := b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(40, 10)), 2)
	b.AddRoom("R0", geom.RectWH(12, 3, 6, 6), h)
	b.AddRoom("R1", geom.RectWH(24, 11, 6, 6), h)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := walkgraph.MustBuild(plan)
	dep := rfid.NewDeployment([]rfid.Reader{
		{Pos: geom.Pt(10, 10), Range: 2},
		{Pos: geom.Pt(20, 10), Range: 2},
		{Pos: geom.Pt(30, 10), Range: 2},
	})
	return g, anchor.MustBuildIndex(g, 1.0), dep
}

// hallwayAnchorNear returns the hallway anchor closest to x on the corridor.
func hallwayAnchorNear(t *testing.T, idx *anchor.Index, x float64) anchor.ID {
	t.Helper()
	best, bestDist := anchor.NoAnchor, math.Inf(1)
	for _, a := range idx.Anchors() {
		if a.Room != floorplan.NoRoom {
			continue
		}
		if d := math.Abs(a.Pos.X - x); d < bestDist {
			best, bestDist = a.ID, d
		}
	}
	return best
}

func TestRangeHallwayWidthRatio(t *testing.T) {
	g, idx, _ := corridor(t)
	e := NewEvaluator(g, idx)
	tab := anchor.NewTable()
	ap := hallwayAnchorNear(t, idx, 5.5)
	tab.Add(ap, 1, 1.0)
	// Query covers x in [4, 7] and the top half of the hallway width.
	q := geom.RectFromCorners(geom.Pt(4, 10), geom.Pt(7, 11))
	rs := e.Range(tab, q)
	if math.Abs(rs[1]-0.5) > 1e-9 {
		t.Errorf("P(o1 in q) = %v, want 0.5 (width ratio)", rs[1])
	}
	// Full width -> full probability.
	q = geom.RectFromCorners(geom.Pt(4, 9), geom.Pt(7, 11))
	rs = e.Range(tab, q)
	if math.Abs(rs[1]-1.0) > 1e-9 {
		t.Errorf("full-width P = %v, want 1.0", rs[1])
	}
	// Query outside the anchor's x interval -> no result.
	q = geom.RectFromCorners(geom.Pt(8, 9), geom.Pt(9, 11))
	if rs = e.Range(tab, q); len(rs) != 0 {
		t.Errorf("out-of-range query returned %v", rs)
	}
}

func TestRangeRoomAreaRatio(t *testing.T) {
	g, idx, _ := corridor(t)
	e := NewEvaluator(g, idx)
	tab := anchor.NewTable()
	tab.Add(idx.RoomAnchor(0), 2, 0.8)
	// Query covers the quarter of room R0: x in [12, 15], y in [3, 6].
	q := geom.RectFromCorners(geom.Pt(12, 3), geom.Pt(15, 6))
	rs := e.Range(tab, q)
	if math.Abs(rs[2]-0.8*0.25) > 1e-9 {
		t.Errorf("P(o2 in q) = %v, want 0.2 (area ratio)", rs[2])
	}
	// Whole room -> full stored probability.
	q = geom.RectFromCorners(geom.Pt(12, 3), geom.Pt(18, 9))
	rs = e.Range(tab, q)
	if math.Abs(rs[2]-0.8) > 1e-9 {
		t.Errorf("whole-room P = %v, want 0.8", rs[2])
	}
}

func TestRangeCombinesHallwayAndRoom(t *testing.T) {
	g, idx, _ := corridor(t)
	e := NewEvaluator(g, idx)
	tab := anchor.NewTable()
	// Object 1 split between a hallway anchor near x=13 and room R0.
	tab.Add(hallwayAnchorNear(t, idx, 13.5), 1, 0.5)
	tab.Add(idx.RoomAnchor(0), 1, 0.5)
	// Query spanning the hallway (full width) and the top half of R0 around
	// x in [12, 18].
	q := geom.RectFromCorners(geom.Pt(12, 6), geom.Pt(18, 11))
	rs := e.Range(tab, q)
	// Hallway part: full width ratio -> 0.5. Room part: covered area is
	// 6 x 3 of 6 x 6 -> 0.5 * 0.5 = 0.25. Total 0.75.
	if math.Abs(rs[1]-0.75) > 1e-9 {
		t.Errorf("combined P = %v, want 0.75", rs[1])
	}
}

func TestRangeEmptyTable(t *testing.T) {
	g, idx, _ := corridor(t)
	e := NewEvaluator(g, idx)
	rs := e.Range(anchor.NewTable(), geom.RectFromCorners(geom.Pt(0, 0), geom.Pt(40, 20)))
	if len(rs) != 0 {
		t.Errorf("empty table gave %v", rs)
	}
}

func TestKNNStopsAtProbabilityK(t *testing.T) {
	g, idx, _ := corridor(t)
	e := NewEvaluator(g, idx)
	tab := anchor.NewTable()
	// Three unit-mass objects at x ~ 5, 20, 35.
	tab.Add(hallwayAnchorNear(t, idx, 5), 1, 1.0)
	tab.Add(hallwayAnchorNear(t, idx, 20), 2, 1.0)
	tab.Add(hallwayAnchorNear(t, idx, 35), 3, 1.0)
	rs := e.KNN(tab, geom.Pt(6, 10), 2)
	if len(rs) != 2 {
		t.Fatalf("result = %v, want 2 objects", rs)
	}
	if _, ok := rs[1]; !ok {
		t.Error("nearest object missing")
	}
	if _, ok := rs[2]; !ok {
		t.Error("second-nearest object missing")
	}
	if rs.TotalProb() < 2 {
		t.Errorf("total probability %v < k", rs.TotalProb())
	}
}

func TestKNNWithSpreadDistributions(t *testing.T) {
	g, idx, _ := corridor(t)
	e := NewEvaluator(g, idx)
	tab := anchor.NewTable()
	// Object 1 spread near the query; objects 2 and 3 farther away.
	tab.Add(hallwayAnchorNear(t, idx, 9), 1, 0.5)
	tab.Add(hallwayAnchorNear(t, idx, 11), 1, 0.5)
	tab.Add(hallwayAnchorNear(t, idx, 20), 2, 1.0)
	tab.Add(hallwayAnchorNear(t, idx, 30), 3, 1.0)
	rs := e.KNN(tab, geom.Pt(10, 10), 2)
	// Expansion: picks up o1's two halves, then o2's mass reaches 2.0.
	if rs.TotalProb() < 2 {
		t.Errorf("total = %v", rs.TotalProb())
	}
	if math.Abs(rs[1]-1.0) > 1e-9 {
		t.Errorf("o1 mass = %v", rs[1])
	}
	if _, ok := rs[3]; ok {
		t.Error("farthest object included unnecessarily")
	}
}

func TestKNNZeroKAndEmptyTable(t *testing.T) {
	g, idx, _ := corridor(t)
	e := NewEvaluator(g, idx)
	if rs := e.KNN(anchor.NewTable(), geom.Pt(10, 10), 0); len(rs) != 0 {
		t.Errorf("k=0 gave %v", rs)
	}
	// Insufficient mass: returns whatever exists without looping forever.
	tab := anchor.NewTable()
	tab.Add(hallwayAnchorNear(t, idx, 5), 1, 0.5)
	rs := e.KNN(tab, geom.Pt(10, 10), 3)
	if math.Abs(rs.TotalProb()-0.5) > 1e-9 {
		t.Errorf("partial-mass total = %v", rs.TotalProb())
	}
}

func TestTopKObjects(t *testing.T) {
	rs := model.ResultSet{1: 0.2, 2: 0.9, 3: 0.5}
	top := TopKObjects(rs, 2)
	if len(top) != 2 || top[0] != 2 || top[1] != 3 {
		t.Errorf("top = %v", top)
	}
	if got := TopKObjects(rs, 10); len(got) != 3 {
		t.Errorf("oversized k = %v", got)
	}
	// Ties break to lower ID.
	tie := model.ResultSet{7: 0.5, 4: 0.5}
	if got := TopKObjects(tie, 1); got[0] != 4 {
		t.Errorf("tie-break = %v", got)
	}
}

func TestUncertainRegionGrowsWithTime(t *testing.T) {
	g, idx, dep := corridor(t)
	p := NewPruner(g, idx, dep, 1.5)
	info := ObjectInfo{Object: 1, Reader: 0, LastSeen: 100}
	ur0 := p.UncertainRegion(info, 100)
	if math.Abs(ur0.R-2) > 1e-9 {
		t.Errorf("fresh UR radius = %v, want device range 2", ur0.R)
	}
	ur10 := p.UncertainRegion(info, 110)
	if math.Abs(ur10.R-(2+15)) > 1e-9 {
		t.Errorf("10 s UR radius = %v, want 17", ur10.R)
	}
	// Clock skew (lastSeen in the future) clamps lmax at 0.
	urNeg := p.UncertainRegion(info, 90)
	if urNeg.R != 2 {
		t.Errorf("negative-age UR radius = %v", urNeg.R)
	}
}

func TestRangeCandidatesFiltering(t *testing.T) {
	g, idx, dep := corridor(t)
	p := NewPruner(g, idx, dep, 1.5)
	infos := []ObjectInfo{
		{Object: 1, Reader: 0, LastSeen: 100}, // near x=10
		{Object: 2, Reader: 2, LastSeen: 100}, // near x=30
	}
	windows := []geom.Rect{geom.RectFromCorners(geom.Pt(8, 9), geom.Pt(12, 11))}
	got := p.RangeCandidates(infos, windows, 100)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("candidates = %v, want [1]", got)
	}
	// Later, object 2's uncertain region reaches the window too.
	got = p.RangeCandidates(infos, windows, 112)
	if len(got) != 2 {
		t.Errorf("grown candidates = %v, want both", got)
	}
	// No windows -> no candidates.
	if got := p.RangeCandidates(infos, nil, 100); len(got) != 0 {
		t.Errorf("no-window candidates = %v", got)
	}
}

func TestKNNCandidatesPruning(t *testing.T) {
	g, idx, dep := corridor(t)
	p := NewPruner(g, idx, dep, 1.5)
	infos := []ObjectInfo{
		{Object: 1, Reader: 0, LastSeen: 100}, // UR around x=10
		{Object: 2, Reader: 1, LastSeen: 100}, // UR around x=20
		{Object: 3, Reader: 2, LastSeen: 100}, // UR around x=30
	}
	// 2NN at x=12: objects 1 and 2 suffice; object 3's minimum distance
	// (~16) exceeds the 2nd smallest maximum (~10).
	got := p.KNNCandidates(infos, geom.Pt(12, 10), 2, 100)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("candidates = %v, want [1 2]", got)
	}
	// k=3 keeps everyone.
	got = p.KNNCandidates(infos, geom.Pt(12, 10), 3, 100)
	if len(got) != 3 {
		t.Errorf("k=3 candidates = %v", got)
	}
	// Empty input.
	if got := p.KNNCandidates(nil, geom.Pt(12, 10), 2, 100); got != nil {
		t.Errorf("empty input candidates = %v", got)
	}
}

func TestKNNCandidatesNeverPrunesTrueNeighbors(t *testing.T) {
	// Safety property: the pruned set must always contain the objects whose
	// entire uncertain regions are nearest; with k = len(objects) nothing is
	// pruned.
	g, idx, dep := corridor(t)
	p := NewPruner(g, idx, dep, 1.5)
	infos := []ObjectInfo{
		{Object: 1, Reader: 0, LastSeen: 90},
		{Object: 2, Reader: 1, LastSeen: 95},
		{Object: 3, Reader: 2, LastSeen: 99},
	}
	got := p.KNNCandidates(infos, geom.Pt(20, 10), 3, 100)
	if len(got) != 3 {
		t.Errorf("with k = n, candidates = %v", got)
	}
}

func TestRoomOf(t *testing.T) {
	g, idx, _ := corridor(t)
	e := NewEvaluator(g, idx)
	if r := e.RoomOf(geom.Pt(14, 5)); r != 0 {
		t.Errorf("RoomOf(room interior) = %d", r)
	}
	if r := e.RoomOf(geom.Pt(5, 10)); r != floorplan.NoRoom {
		t.Errorf("RoomOf(hallway) = %d", r)
	}
}
