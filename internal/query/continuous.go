package query

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/model"
)

// This file implements the continuous query types the paper lists as future
// work (Section 6): continuous range and continuous kNN monitors that track
// a registered query's result set across snapshot re-evaluations and report
// the deltas, so clients only see membership changes instead of re-reading
// full probabilistic answers.

// ContinuousRange monitors a registered range query. Call Update with each
// new snapshot answer; it reports the objects whose membership probability
// crossed the threshold in either direction.
type ContinuousRange struct {
	// Window is the monitored query window.
	Window geom.Rect
	// Threshold is the membership probability above which an object counts
	// as "in the result".
	Threshold float64
	prev      map[model.ObjectID]bool
}

// NewContinuousRange registers a continuous range query. Threshold must be
// in (0, 1); 0.5 is a sensible default.
func NewContinuousRange(window geom.Rect, threshold float64) *ContinuousRange {
	return &ContinuousRange{
		Window:    window,
		Threshold: threshold,
		prev:      make(map[model.ObjectID]bool),
	}
}

// Update feeds the next snapshot answer for the window and returns the
// objects that entered (probability rose to >= Threshold) and left
// (dropped below) since the previous update, each sorted ascending.
func (c *ContinuousRange) Update(rs model.ResultSet) (entered, left []model.ObjectID) {
	cur := make(map[model.ObjectID]bool, len(rs))
	for o, p := range rs {
		if p >= c.Threshold {
			cur[o] = true
		}
	}
	for o := range cur {
		if !c.prev[o] {
			entered = append(entered, o)
		}
	}
	for o := range c.prev {
		if !cur[o] {
			left = append(left, o)
		}
	}
	c.prev = cur
	sortIDs(entered)
	sortIDs(left)
	return entered, left
}

// Result returns the current result membership, sorted ascending.
func (c *ContinuousRange) Result() []model.ObjectID {
	out := make([]model.ObjectID, 0, len(c.prev))
	for o := range c.prev {
		out = append(out, o)
	}
	sortIDs(out)
	return out
}

// ContinuousKNN monitors a registered kNN query: it tracks the k most
// probable objects of each snapshot answer and reports set changes.
type ContinuousKNN struct {
	// Q is the query point; K the number of neighbors tracked.
	Q geom.Point
	K int

	prev map[model.ObjectID]bool
}

// NewContinuousKNN registers a continuous kNN query.
func NewContinuousKNN(q geom.Point, k int) *ContinuousKNN {
	return &ContinuousKNN{Q: q, K: k, prev: make(map[model.ObjectID]bool)}
}

// Update feeds the next snapshot answer and returns the objects added to and
// removed from the top-k set, each sorted ascending.
func (c *ContinuousKNN) Update(rs model.ResultSet) (added, removed []model.ObjectID) {
	top := TopKObjects(rs, c.K)
	cur := make(map[model.ObjectID]bool, len(top))
	for _, o := range top {
		cur[o] = true
	}
	for o := range cur {
		if !c.prev[o] {
			added = append(added, o)
		}
	}
	for o := range c.prev {
		if !cur[o] {
			removed = append(removed, o)
		}
	}
	c.prev = cur
	sortIDs(added)
	sortIDs(removed)
	return added, removed
}

// Result returns the current top-k membership, sorted ascending.
func (c *ContinuousKNN) Result() []model.ObjectID {
	out := make([]model.ObjectID, 0, len(c.prev))
	for o := range c.prev {
		out = append(out, o)
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []model.ObjectID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
