package query

import (
	"math"
	"testing"

	"repro/internal/anchor"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rng"
)

func TestPTKNNPointMasses(t *testing.T) {
	g, idx, _ := corridor(t)
	e := NewEvaluator(g, idx)
	tab := anchor.NewTable()
	// Certain positions: objects at x ~ 5, 8, 30.
	tab.Add(hallwayAnchorNear(t, idx, 5), 1, 1)
	tab.Add(hallwayAnchorNear(t, idx, 8), 2, 1)
	tab.Add(hallwayAnchorNear(t, idx, 30), 3, 1)
	src := rng.New(1)
	out := e.PTKNN(src, tab, geom.Pt(6, 10), 2, 0.5, 200)
	if len(out) != 2 {
		t.Fatalf("PTKNN = %v", out)
	}
	if out[0].Object != 1 && out[0].Object != 2 {
		t.Errorf("unexpected member %v", out[0])
	}
	for _, r := range out {
		if math.Abs(r.P-1) > 1e-9 {
			t.Errorf("deterministic member P = %v", r.P)
		}
		if r.Object == 3 {
			t.Error("far object included")
		}
	}
}

func TestPTKNNThresholdFilters(t *testing.T) {
	g, idx, _ := corridor(t)
	e := NewEvaluator(g, idx)
	tab := anchor.NewTable()
	// Object 2 is split between a lobe right at the query point and a far
	// one, so its 1NN membership is ~50%; object 1 sits 3 m away and wins
	// exactly when object 2 samples the far lobe.
	tab.Add(hallwayAnchorNear(t, idx, 5), 1, 1)
	tab.Add(hallwayAnchorNear(t, idx, 2), 2, 0.5)
	tab.Add(hallwayAnchorNear(t, idx, 35), 2, 0.5)
	src := rng.New(2)
	probs := e.KNNMembership(src, tab, geom.Pt(2, 10), 1, 2000)
	if probs[1] < 0.3 || probs[1] > 0.7 {
		t.Errorf("P(1 in 1NN) = %v", probs[1])
	}
	if math.Abs(probs[1]+probs[2]-1) > 0.05 {
		t.Errorf("memberships do not sum to ~1 for 1NN: %v", probs)
	}
	// High threshold excludes both; low includes both.
	if got := e.PTKNN(src, tab, geom.Pt(2, 10), 1, 0.95, 500); len(got) != 0 {
		t.Errorf("T=0.95 returned %v", got)
	}
	if got := e.PTKNN(src, tab, geom.Pt(2, 10), 1, 0.2, 500); len(got) != 2 {
		t.Errorf("T=0.2 returned %v", got)
	}
}

func TestKNNMembershipSumsToK(t *testing.T) {
	g, idx, _ := corridor(t)
	e := NewEvaluator(g, idx)
	tab := anchor.NewTable()
	for i, x := range []float64{4, 9, 14, 22, 31, 36} {
		tab.Add(hallwayAnchorNear(t, idx, x), int2obj(i), 1)
	}
	src := rng.New(3)
	k := 3
	probs := e.KNNMembership(src, tab, geom.Pt(12, 10), k, 500)
	total := 0.0
	for _, p := range probs {
		total += p
	}
	if math.Abs(total-float64(k)) > 1e-9 {
		t.Errorf("membership mass = %v, want %d", total, k)
	}
}

func TestPTKNNEdgeCases(t *testing.T) {
	g, idx, _ := corridor(t)
	e := NewEvaluator(g, idx)
	src := rng.New(4)
	if got := e.KNNMembership(src, anchor.NewTable(), geom.Pt(5, 10), 2, 100); got != nil {
		t.Errorf("empty table membership = %v", got)
	}
	tab := anchor.NewTable()
	tab.Add(hallwayAnchorNear(t, idx, 5), 1, 1)
	if got := e.KNNMembership(src, tab, geom.Pt(5, 10), 0, 100); got != nil {
		t.Errorf("k=0 membership = %v", got)
	}
	if got := e.KNNMembership(src, tab, geom.Pt(5, 10), 2, 0); got != nil {
		t.Errorf("trials=0 membership = %v", got)
	}
	// k larger than population clamps: single object always a member.
	probs := e.KNNMembership(src, tab, geom.Pt(5, 10), 5, 50)
	if probs[1] != 1 {
		t.Errorf("clamped k membership = %v", probs)
	}
}

func int2obj(i int) model.ObjectID { return model.ObjectID(i) }
