package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAggregatedReadingDetected(t *testing.T) {
	if (AggregatedReading{Reader: NoReader}).Detected() {
		t.Error("NoReader entry reported detected")
	}
	if !(AggregatedReading{Reader: 3}).Detected() {
		t.Error("real reader entry reported undetected")
	}
}

func TestEventKindString(t *testing.T) {
	if Enter.String() != "ENTER" || Leave.String() != "LEAVE" {
		t.Errorf("kind strings: %q %q", Enter, Leave)
	}
	if EventKind(9).String() != "EventKind(9)" {
		t.Errorf("unknown kind string: %q", EventKind(9))
	}
}

func TestStringers(t *testing.T) {
	r := RawReading{Object: 1, Reader: 2, Time: 3}
	if r.String() != "o1@d2 t=3" {
		t.Errorf("RawReading.String() = %q", r)
	}
	e := Event{Kind: Enter, Object: 4, Reader: 5, Time: 6}
	if e.String() != "ENTER o4 d5 t=6" {
		t.Errorf("Event.String() = %q", e)
	}
}

func TestResultSetAdd(t *testing.T) {
	s := ResultSet{1: 0.2, 2: 0.15}
	s.Add(ResultSet{2: 0.1, 3: 0.05})
	// This is the worked example from the paper's Section 4.6.1.
	want := ResultSet{1: 0.2, 2: 0.25, 3: 0.05}
	for o, p := range want {
		if math.Abs(s[o]-p) > 1e-12 {
			t.Errorf("s[%d] = %v, want %v", o, s[o], p)
		}
	}
	if len(s) != 3 {
		t.Errorf("len = %d", len(s))
	}
}

func TestResultSetScale(t *testing.T) {
	s := ResultSet{1: 0.4, 2: 0.8}
	s.Scale(0.5)
	if s[1] != 0.2 || s[2] != 0.4 {
		t.Errorf("after Scale: %v", s)
	}
}

func TestResultSetTotalProb(t *testing.T) {
	s := ResultSet{1: 0.25, 2: 0.5, 3: 0.25}
	if got := s.TotalProb(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("TotalProb = %v", got)
	}
	if (ResultSet{}).TotalProb() != 0 {
		t.Error("empty TotalProb != 0")
	}
}

func TestResultSetCloneIsDeep(t *testing.T) {
	s := ResultSet{1: 0.5}
	c := s.Clone()
	c[1] = 0.9
	c[2] = 0.1
	if s[1] != 0.5 || len(s) != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestResultSetObjects(t *testing.T) {
	s := ResultSet{5: 0.1, 7: 0.2}
	objs := s.Objects()
	if len(objs) != 2 {
		t.Fatalf("Objects len = %d", len(objs))
	}
	seen := map[ObjectID]bool{}
	for _, o := range objs {
		seen[o] = true
	}
	if !seen[5] || !seen[7] {
		t.Errorf("Objects = %v", objs)
	}
}

func TestResultSetAddCommutesOnTotals(t *testing.T) {
	f := func(ps, qs []float64) bool {
		a, b := ResultSet{}, ResultSet{}
		for i, p := range ps {
			a[ObjectID(i)] = math.Abs(math.Mod(p, 1))
		}
		for i, q := range qs {
			b[ObjectID(i)] = math.Abs(math.Mod(q, 1))
		}
		x, y := a.Clone(), b.Clone()
		x.Add(b)
		y.Add(a)
		return math.Abs(x.TotalProb()-y.TotalProb()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
