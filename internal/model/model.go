// Package model holds the small set of identifier and record types shared by
// the RFID substrate, the collector, the inference modules, and the query
// evaluator. Keeping them here avoids import cycles between those packages.
package model

import (
	"fmt"
	"sort"
)

// ObjectID identifies a moving object. Each object carries exactly one RFID
// tag, so the object ID doubles as the tag ID in raw readings.
type ObjectID int

// ReaderID identifies a deployed RFID reader.
type ReaderID int

// NoReader is the ReaderID used when no reader is involved (for example, an
// aggregated entry for a second in which an object went undetected).
const NoReader ReaderID = -1

// Time is a simulation time stamp in whole seconds. The paper's collector
// aggregates raw reads to one-second entries, so seconds are the system's
// native resolution.
type Time int64

// RawReading is a single raw RFID read: reader r saw the tag of object o at
// time t (with sub-second reads already carrying the same Time value).
type RawReading struct {
	Object ObjectID
	Reader ReaderID
	Time   Time
}

// String implements fmt.Stringer.
func (r RawReading) String() string {
	return fmt.Sprintf("o%d@d%d t=%d", r.Object, r.Reader, r.Time)
}

// Batch is one delivery of raw readings from a gateway: the readings
// produced (or retransmitted) for batch second Time. Gateways batch at one
// second granularity, but a delivery's readings may carry neighboring time
// stamps — the ingestion path routes each reading by its own Time.
type Batch struct {
	Time     Time         `json:"time"`
	Readings []RawReading `json:"readings"`
}

// AggregatedReading is a one-second aggregated entry for one object: during
// second Time the object was detected by Reader (NoReader when undetected).
type AggregatedReading struct {
	Object ObjectID
	Reader ReaderID
	Time   Time
}

// Detected reports whether the entry records an actual detection.
func (a AggregatedReading) Detected() bool { return a.Reader != NoReader }

// EventKind distinguishes the collector's ENTER and LEAVE events.
type EventKind int

const (
	// Enter is recorded when an object enters a reader's activation range.
	Enter EventKind = iota
	// Leave is recorded when an object leaves a reader's activation range.
	Leave
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Enter:
		return "ENTER"
	case Leave:
		return "LEAVE"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is an ENTER or LEAVE observation of an object at a reader.
type Event struct {
	Kind   EventKind
	Object ObjectID
	Reader ReaderID
	Time   Time
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("%s o%d d%d t=%d", e.Kind, e.Object, e.Reader, e.Time)
}

// ObjProb pairs an object with a probability, the unit of probabilistic
// query answers throughout the system.
type ObjProb struct {
	Object ObjectID
	P      float64
}

// ResultSet is a probabilistic query answer: for each object, the
// probability that it satisfies the query. It implements the resultSet
// addition and multiplication operations of the paper's Algorithm 3.
type ResultSet map[ObjectID]float64

// Add merges another result set into s, summing probabilities per object
// (the paper's resultSet "+" operation).
func (s ResultSet) Add(other ResultSet) {
	for o, p := range other {
		s[o] += p
	}
}

// AddPair merges a single object/probability pair into s.
func (s ResultSet) AddPair(o ObjectID, p float64) { s[o] += p }

// Scale multiplies every probability by ratio (the paper's resultSet "*"
// operation used for the hallway-width and room-area compensation).
func (s ResultSet) Scale(ratio float64) {
	for o := range s {
		s[o] *= ratio
	}
}

// TotalProb returns the sum of all probabilities in s (used by the kNN
// algorithm's stopping criterion). The sum runs in ascending object order:
// float addition is not associative, and the stopping criterion compares the
// total against a threshold, so summing in map iteration order would let two
// ResultSets with identical contents disagree on a borderline comparison —
// making kNN answers differ between otherwise identical systems.
func (s ResultSet) TotalProb() float64 {
	ids := make([]ObjectID, 0, len(s))
	for o := range s {
		ids = append(ids, o)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	t := 0.0
	for _, o := range ids {
		t += s[o]
	}
	return t
}

// Clone returns a deep copy of s.
func (s ResultSet) Clone() ResultSet {
	c := make(ResultSet, len(s))
	for o, p := range s {
		c[o] = p
	}
	return c
}

// Objects returns the objects present in s in unspecified order.
func (s ResultSet) Objects() []ObjectID {
	out := make([]ObjectID, 0, len(s))
	for o := range s {
		out = append(out, o)
	}
	return out
}
