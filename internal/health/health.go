// Package health infers per-reader liveness from the reading stream alone.
// The paper's sensing model silently assumes every RFID reader is alive: a
// second of silence is negative evidence that pushes particle mass out of
// activation ranges, and the pruner's uncertain regions grow only from
// elapsed time — so a dead reader makes the filter confidently wrong instead
// of merely uncertain. Following the distributed-inference line of work
// (Cao et al., VLDB 2011), this package models reader unreliability
// explicitly: a Monitor compares each reader's expected detection rate
// against what actually arrived and walks a LIVE → SUSPECT → DEAD state
// machine with hysteresis. The engine feeds the resulting unhealthy set to
// the particle filter (suppressing the negative-information penalty inside
// unhealthy ranges) and to the query pruner (widening uncertain regions), so
// inference degrades to "uncertain" instead of "confidently wrong".
//
// The monitor is driven by stream time (the ingested batch seconds), not
// wall-clock time, so its verdicts are deterministic and reproducible: the
// same reading stream always yields the same state trajectory, and recovery
// replay rebuilds the same states.
//
// Signals. Silence alone cannot distinguish a dead reader from a reader
// whose traffic legitimately walked away (rooms are uncovered, so an object
// dwelling in a room is silent for minutes). The monitor therefore gates its
// expectation on attribution: an object detected by reader r and then seen
// nowhere keeps r "expecting" detections for ExpectHorizon seconds; an
// object handed off to another reader releases r immediately. Each silent
// second accrues min(EWMA rate, recently vanished objects) expected-but-
// missing detections; crossing SuspectMissed flags the reader, crossing
// DeadMissed declares it dead. A single vanished object can never exceed
// ExpectHorizon accrued misses, so the default thresholds make a lone
// room-dweller structurally unable to flag a healthy reader — it takes at
// least two coincident vanishes, the signature of a range going dark.
package health

import (
	"fmt"

	"repro/internal/model"
)

// State is a reader's inferred liveness.
type State uint8

const (
	// Live means the reader is believed healthy; sensing-model compensation
	// is fully passive for LIVE readers.
	Live State = iota
	// Suspect means the reader has accrued enough expected-but-missing
	// detections to distrust its silence. Compensation treats SUSPECT like
	// DEAD (both are conservative); the distinction is evidentiary strength.
	Suspect
	// Dead means the missing-detection evidence crossed the dead threshold.
	Dead
)

func (s State) String() string {
	switch s {
	case Live:
		return "live"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config parameterizes the Monitor. The zero value disables monitoring
// entirely (every reader reports LIVE forever); DefaultConfig returns the
// tuned defaults.
type Config struct {
	// Enabled turns the monitor on. When false the monitor is inert: every
	// reader stays LIVE and ObserveSecond is a no-op, which keeps the whole
	// compensation layer bit-for-bit passive.
	Enabled bool
	// RateAlpha is the EWMA smoothing factor for per-reader detection rates
	// (objects/second), applied on seconds the reader produced readings.
	RateAlpha float64
	// ExpectHorizon is how many seconds an object that vanished from a
	// reader (detected there, then seen nowhere) keeps that reader
	// "expecting" detections. Past the horizon the object is presumed to
	// have legitimately left coverage (parked in an uncovered room, left
	// the building).
	ExpectHorizon int
	// SuspectMissed is the accrued expected-but-missing detection count at
	// which a LIVE reader becomes SUSPECT. It must exceed ExpectHorizon so
	// a single vanished object cannot flag a healthy reader.
	SuspectMissed float64
	// DeadMissed is the accrual at which a reader is declared DEAD.
	DeadMissed float64
	// MissedDecay is the per-second multiplicative decay of the accrued
	// miss evidence, so stale partial evidence from isolated events does
	// not accumulate across minutes into a false positive.
	MissedDecay float64
	// RecoverSeconds is the hysteresis band on the way back: a DEAD reader
	// must produce readings in this many consecutive stream seconds before
	// it is trusted LIVE again (SUSPECT recovers on the first reading — a
	// detection is proof of life, suspicion was only statistical).
	RecoverSeconds int
}

// DefaultConfig returns the tuned monitor defaults. With ExpectHorizon 6 and
// SuspectMissed 8, one vanished object accrues at most 6 < 8: flagging a
// reader takes at least two objects going dark near-simultaneously, which is
// the signature of a range dying rather than of one person entering a room.
func DefaultConfig() Config {
	return Config{
		Enabled:        true,
		RateAlpha:      0.2,
		ExpectHorizon:  6,
		SuspectMissed:  8,
		DeadMissed:     16,
		MissedDecay:    0.97,
		RecoverSeconds: 2,
	}
}

// Validate checks the configuration. The zero value (disabled) is valid.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.RateAlpha <= 0 || c.RateAlpha > 1 {
		return fmt.Errorf("health: RateAlpha %v out of (0, 1]", c.RateAlpha)
	}
	if c.ExpectHorizon <= 0 {
		return fmt.Errorf("health: ExpectHorizon must be positive, got %d", c.ExpectHorizon)
	}
	if c.SuspectMissed <= float64(c.ExpectHorizon) {
		return fmt.Errorf("health: SuspectMissed %v must exceed ExpectHorizon %d (a single vanished object must not flag a reader)",
			c.SuspectMissed, c.ExpectHorizon)
	}
	if c.DeadMissed < c.SuspectMissed {
		return fmt.Errorf("health: DeadMissed %v below SuspectMissed %v", c.DeadMissed, c.SuspectMissed)
	}
	if c.MissedDecay <= 0 || c.MissedDecay > 1 {
		return fmt.Errorf("health: MissedDecay %v out of (0, 1]", c.MissedDecay)
	}
	if c.RecoverSeconds <= 0 {
		return fmt.Errorf("health: RecoverSeconds must be positive, got %d", c.RecoverSeconds)
	}
	return nil
}

// ReaderHealth is one reader's externally visible health record, served at
// GET /readers and mirrored into /metrics.
type ReaderHealth struct {
	Reader model.ReaderID `json:"reader"`
	State  State          `json:"-"`
	// StateName is the lowercase state for JSON consumers.
	StateName string `json:"state"`
	// SilenceSeconds is stream-now minus the last second the reader
	// produced any reading (0 when it read this second; -1 when it has
	// never read).
	SilenceSeconds int64 `json:"silenceSeconds"`
	// Rate is the EWMA detection rate (objects/second) while reading.
	Rate float64 `json:"rate"`
	// Missed is the accrued expected-but-missing detection evidence.
	Missed float64 `json:"missed"`
	// LastRead is the last stream second with a reading (0 = never).
	LastRead model.Time `json:"lastRead"`
	// Transitions counts state changes since startup.
	Transitions int `json:"transitions"`
}

// readerState is the per-reader monitor state.
type readerState struct {
	state         State
	rate          float64 // EWMA detections/second while reading
	missed        float64 // accrued expected-but-missing detections
	lastRead      model.Time
	everRead      bool
	recoverStreak int // consecutive seconds with readings (DEAD exit band)
	transitions   int
}

// pendingObj tracks an object whose most recent detection anywhere was by
// lastReader and that has not been seen since.
type pendingObj struct {
	reader model.ReaderID
	since  model.Time // second of the last detection
}

// Monitor infers per-reader health from the observed reading stream. It is
// not safe for concurrent use; the engine drives it under its own
// serialization (the same single-writer discipline as the collector).
type Monitor struct {
	cfg     Config
	readers []readerState
	pending map[model.ObjectID]pendingObj
	now     model.Time

	// scratch maps reused across ObserveSecond calls.
	counts map[model.ReaderID]map[model.ObjectID]struct{}

	// unhealthy caches the current non-LIVE set as a []bool indexed by
	// reader, nil when every reader is LIVE — the exact shape the filter
	// and pruner consume, so the all-healthy fast path costs nothing.
	unhealthy []bool
}

// NewMonitor builds a Monitor over numReaders readers, all initially LIVE.
func NewMonitor(cfg Config, numReaders int) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numReaders < 0 {
		return nil, fmt.Errorf("health: negative reader count %d", numReaders)
	}
	return &Monitor{
		cfg:     cfg,
		readers: make([]readerState, numReaders),
		pending: make(map[model.ObjectID]pendingObj),
		counts:  make(map[model.ReaderID]map[model.ObjectID]struct{}),
	}, nil
}

// Enabled reports whether the monitor is active.
func (m *Monitor) Enabled() bool { return m.cfg.Enabled }

// State returns the reader's current health state.
func (m *Monitor) State(id model.ReaderID) State {
	if int(id) < 0 || int(id) >= len(m.readers) {
		return Live
	}
	return m.readers[id].state
}

// Unhealthy returns the non-LIVE set as a []bool indexed by ReaderID, or nil
// when every reader is LIVE. The slice is owned by the monitor and replaced
// wholesale on change; callers must treat it as read-only.
func (m *Monitor) Unhealthy() []bool { return m.unhealthy }

// ObserveSecond feeds the monitor the raw readings ingested for stream
// second t and reports whether any reader changed state. Readings with no
// reader attached are ignored; a mis-stamped reading still proves its reader
// alive (its clock is broken, not its radio).
func (m *Monitor) ObserveSecond(t model.Time, raws []model.RawReading) (changed bool) {
	if !m.cfg.Enabled || len(m.readers) == 0 {
		return false
	}
	if t <= m.now && m.now != 0 {
		// Replayed or non-advancing second: nothing new to learn.
		return false
	}
	m.now = t

	// Distinct objects per reader this second (the detection counts the
	// rate EWMA tracks), reusing the scratch maps.
	for r, set := range m.counts {
		clear(set)
		_ = r
	}
	anyRead := make(map[model.ReaderID]bool, 4)
	for _, r := range raws {
		if r.Reader == model.NoReader || int(r.Reader) >= len(m.readers) || int(r.Reader) < 0 {
			continue
		}
		anyRead[r.Reader] = true
		if r.Time != t {
			continue // mis-stamped: proves liveness, but is not a clean detection
		}
		set := m.counts[r.Reader]
		if set == nil {
			set = make(map[model.ObjectID]struct{})
			m.counts[r.Reader] = set
		}
		set[r.Object] = struct{}{}
	}

	// Re-attribute detected objects: a detection anywhere releases every
	// prior expectation for the object and opens a new one.
	for rd, set := range m.counts {
		for obj := range set {
			m.pending[obj] = pendingObj{reader: rd, since: t}
		}
	}
	// Expire objects past the horizon and tally recently vanished objects
	// per reader (the expectation gate).
	recent := make(map[model.ReaderID]int, 4)
	for obj, p := range m.pending {
		age := t - p.since
		if age > model.Time(m.cfg.ExpectHorizon) {
			delete(m.pending, obj)
			continue
		}
		if age > 0 {
			recent[p.reader]++
		}
	}

	for id := range m.readers {
		rs := &m.readers[id]
		rid := model.ReaderID(id)
		obs := len(m.counts[rid])
		if anyRead[rid] {
			// Proof of life: update the rate, clear the evidence, and walk
			// the state toward LIVE through the hysteresis band.
			if obs > 0 {
				rs.rate += m.cfg.RateAlpha * (float64(obs) - rs.rate)
			}
			rs.missed = 0
			rs.lastRead = t
			rs.everRead = true
			rs.recoverStreak++
			switch rs.state {
			case Suspect:
				rs.state = Live
				rs.transitions++
				changed = true
			case Dead:
				if rs.recoverStreak >= m.cfg.RecoverSeconds {
					rs.state = Live
					rs.transitions++
					changed = true
				}
			}
			continue
		}
		rs.recoverStreak = 0
		if !rs.everRead {
			continue // never produced traffic: no expectation, no verdict
		}
		// Silent second: accrue the expected-but-missing detections, gated
		// by how many objects recently vanished from this reader.
		expect := rs.rate
		if g := float64(recent[rid]); g < expect {
			expect = g
		}
		rs.missed = rs.missed*m.cfg.MissedDecay + expect
		switch {
		case rs.state != Dead && rs.missed >= m.cfg.DeadMissed:
			rs.state = Dead
			rs.transitions++
			changed = true
		case rs.state == Live && rs.missed >= m.cfg.SuspectMissed:
			rs.state = Suspect
			rs.transitions++
			changed = true
		}
	}

	if changed {
		m.rebuildUnhealthy()
	}
	return changed
}

// Release drops any pending expectation for obj. The engine calls it when
// the collector explains the object's silence — an ENTER event means the
// object walked into a room, and rooms are uncovered, so its last reader
// should not expect further detections. Without this, a handful of objects
// entering rooms near the same door reader inside the horizon could be
// mistaken for that reader's range going dark.
func (m *Monitor) Release(obj model.ObjectID) {
	if !m.cfg.Enabled {
		return
	}
	delete(m.pending, obj)
}

// rebuildUnhealthy refreshes the cached non-LIVE set.
func (m *Monitor) rebuildUnhealthy() {
	var set []bool
	for id := range m.readers {
		if m.readers[id].state != Live {
			if set == nil {
				set = make([]bool, len(m.readers))
			}
			set[id] = true
		}
	}
	m.unhealthy = set
}

// Snapshot returns every reader's health record as of stream second now.
func (m *Monitor) Snapshot(now model.Time) []ReaderHealth {
	out := make([]ReaderHealth, len(m.readers))
	for id := range m.readers {
		rs := &m.readers[id]
		silence := int64(-1)
		if rs.everRead {
			silence = int64(now - rs.lastRead)
			if silence < 0 {
				silence = 0
			}
		}
		out[id] = ReaderHealth{
			Reader:         model.ReaderID(id),
			State:          rs.state,
			StateName:      rs.state.String(),
			SilenceSeconds: silence,
			Rate:           rs.rate,
			Missed:         rs.missed,
			LastRead:       rs.lastRead,
			Transitions:    rs.transitions,
		}
	}
	return out
}
