package health

import (
	"testing"

	"repro/internal/model"
)

func mustMonitor(t *testing.T, n int) *Monitor {
	t.Helper()
	m, err := NewMonitor(DefaultConfig(), n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// reading builds a well-stamped raw reading.
func reading(obj model.ObjectID, rd model.ReaderID, t model.Time) model.RawReading {
	return model.RawReading{Object: obj, Reader: rd, Time: t}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero (disabled) config must validate, got %v", err)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.SuspectMissed = float64(bad.ExpectHorizon) // not strictly above
	if err := bad.Validate(); err == nil {
		t.Fatal("SuspectMissed <= ExpectHorizon must be rejected")
	}
	bad = DefaultConfig()
	bad.DeadMissed = bad.SuspectMissed - 1
	if err := bad.Validate(); err == nil {
		t.Fatal("DeadMissed < SuspectMissed must be rejected")
	}
}

func TestDisabledMonitorIsInert(t *testing.T) {
	m, err := NewMonitor(Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for sec := model.Time(1); sec <= 50; sec++ {
		if m.ObserveSecond(sec, nil) {
			t.Fatal("disabled monitor reported a state change")
		}
	}
	if m.Unhealthy() != nil {
		t.Fatal("disabled monitor has an unhealthy set")
	}
}

// TestSteadyTrafficStaysLive: a reader with steady traffic, plus a reader
// that never reads, both stay LIVE (no traffic means no expectation).
func TestSteadyTrafficStaysLive(t *testing.T) {
	m := mustMonitor(t, 2)
	for sec := model.Time(1); sec <= 100; sec++ {
		m.ObserveSecond(sec, []model.RawReading{reading(1, 0, sec)})
	}
	if got := m.State(0); got != Live {
		t.Fatalf("steady reader state = %v, want live", got)
	}
	if got := m.State(1); got != Live {
		t.Fatalf("silent-forever reader state = %v, want live", got)
	}
	if m.Unhealthy() != nil {
		t.Fatal("unexpected unhealthy set")
	}
}

// TestSingleVanishDoesNotFlag: one object walking out of a reader's range
// (e.g. into an uncovered room) must never flag the reader — a lone vanish
// accrues at most ExpectHorizon misses, below SuspectMissed by construction.
func TestSingleVanishDoesNotFlag(t *testing.T) {
	m := mustMonitor(t, 1)
	for sec := model.Time(1); sec <= 30; sec++ {
		m.ObserveSecond(sec, []model.RawReading{reading(7, 0, sec)})
	}
	// The object vanishes; the reader sees nothing, forever.
	for sec := model.Time(31); sec <= 120; sec++ {
		m.ObserveSecond(sec, nil)
	}
	if got := m.State(0); got != Live {
		t.Fatalf("reader flagged %v after a single object vanished, want live", got)
	}
}

// TestMassVanishGoesSuspectThenDead: three objects going dark simultaneously
// is the signature of a dying range; the reader must pass SUSPECT on the way
// to DEAD.
func TestMassVanishGoesSuspectThenDead(t *testing.T) {
	m := mustMonitor(t, 2)
	feed := func(sec model.Time) []model.RawReading {
		return []model.RawReading{
			reading(1, 0, sec), reading(2, 0, sec), reading(3, 0, sec),
			reading(9, 1, sec), // keep reader 1 alive as a control
		}
	}
	for sec := model.Time(1); sec <= 30; sec++ {
		m.ObserveSecond(sec, feed(sec))
	}
	sawSuspect := false
	var deadAt model.Time
	for sec := model.Time(31); sec <= 60 && deadAt == 0; sec++ {
		m.ObserveSecond(sec, []model.RawReading{reading(9, 1, sec)})
		switch m.State(0) {
		case Suspect:
			sawSuspect = true
		case Dead:
			deadAt = sec
		}
	}
	if !sawSuspect {
		t.Error("reader never passed through SUSPECT")
	}
	if deadAt == 0 {
		t.Fatalf("reader never declared DEAD; state=%v missed=%v", m.State(0), m.Snapshot(60)[0].Missed)
	}
	if got := m.State(1); got != Live {
		t.Fatalf("control reader state = %v, want live", got)
	}
	un := m.Unhealthy()
	if un == nil || !un[0] || un[1] {
		t.Fatalf("unhealthy set = %v, want reader 0 only", un)
	}
}

// TestHandoffReleasesExpectation: objects handed off to a neighboring reader
// release the previous reader immediately — a drained hallway segment is not
// an outage.
func TestHandoffReleasesExpectation(t *testing.T) {
	m := mustMonitor(t, 2)
	for sec := model.Time(1); sec <= 20; sec++ {
		m.ObserveSecond(sec, []model.RawReading{
			reading(1, 0, sec), reading(2, 0, sec), reading(3, 0, sec),
		})
	}
	// All three hand off to reader 1 and keep reading there.
	for sec := model.Time(21); sec <= 80; sec++ {
		m.ObserveSecond(sec, []model.RawReading{
			reading(1, 1, sec), reading(2, 1, sec), reading(3, 1, sec),
		})
	}
	if got := m.State(0); got != Live {
		t.Fatalf("handed-off reader state = %v, want live", got)
	}
}

// TestReleaseSuppressesExpectation: when the engine explains an object's
// silence (an ENTER event — it walked into an uncovered room), releasing the
// object must keep its reader LIVE even if several objects vanish together.
func TestReleaseSuppressesExpectation(t *testing.T) {
	m := mustMonitor(t, 1)
	for sec := model.Time(1); sec <= 20; sec++ {
		m.ObserveSecond(sec, []model.RawReading{
			reading(1, 0, sec), reading(2, 0, sec), reading(3, 0, sec),
		})
	}
	// All three vanish at once, but every vanish is explained by an ENTER.
	m.Release(1)
	m.Release(2)
	m.Release(3)
	for sec := model.Time(21); sec <= 120; sec++ {
		m.ObserveSecond(sec, nil)
	}
	if got := m.State(0); got != Live {
		t.Fatalf("reader flagged %v after explained vanishes, want live", got)
	}
}

// TestRecoveryHysteresis: a DEAD reader needs RecoverSeconds consecutive
// reading seconds before it is trusted LIVE again; a single flap is not
// enough.
func TestRecoveryHysteresis(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecoverSeconds = 3
	m, err := NewMonitor(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	sec := model.Time(0)
	step := func(raws []model.RawReading) {
		sec++
		m.ObserveSecond(sec, raws)
	}
	traffic := func(t model.Time) []model.RawReading {
		return []model.RawReading{reading(1, 0, t), reading(2, 0, t), reading(3, 0, t)}
	}
	for i := 0; i < 30; i++ {
		step(traffic(sec + 1))
	}
	for i := 0; i < 30; i++ {
		step(nil)
	}
	if got := m.State(0); got != Dead {
		t.Fatalf("state after mass vanish = %v, want dead", got)
	}
	// One flap second, then silence again: still not LIVE.
	step(traffic(sec + 1))
	if got := m.State(0); got != Dead {
		t.Fatalf("state after a single flap = %v, want dead (hysteresis)", got)
	}
	step(nil)
	step(traffic(sec + 1))
	step(traffic(sec + 1))
	if got := m.State(0); got != Live {
		// Streak broke at the silent second; two more make 2 < 3.
		t.Logf("state after broken streak = %v (expected not yet live)", got)
	}
	step(traffic(sec + 1))
	if got := m.State(0); got != Live {
		t.Fatalf("state after %d consecutive reading seconds = %v, want live", cfg.RecoverSeconds, got)
	}
	if m.Unhealthy() != nil {
		t.Fatal("unhealthy set must be nil after full recovery")
	}
}

// TestSuspectRecoversOnFirstReading: SUSPECT is statistical, so one real
// detection clears it.
func TestSuspectRecoversOnFirstReading(t *testing.T) {
	m := mustMonitor(t, 1)
	sec := model.Time(0)
	for i := 0; i < 20; i++ {
		sec++
		m.ObserveSecond(sec, []model.RawReading{reading(1, 0, sec), reading(2, 0, sec)})
	}
	for m.State(0) == Live {
		sec++
		m.ObserveSecond(sec, nil)
		if sec > 200 {
			t.Fatal("two vanished objects never drove the reader to SUSPECT")
		}
	}
	if got := m.State(0); got != Suspect {
		t.Fatalf("state = %v, want suspect", got)
	}
	sec++
	m.ObserveSecond(sec, []model.RawReading{reading(5, 0, sec)})
	if got := m.State(0); got != Live {
		t.Fatalf("state after reading = %v, want live", got)
	}
}

// TestMisstampedReadingProvesLiveness: a reading with a skewed stamp still
// resets the reader's silence clock (its radio works; its clock is broken).
func TestMisstampedReadingProvesLiveness(t *testing.T) {
	m := mustMonitor(t, 1)
	sec := model.Time(0)
	for i := 0; i < 20; i++ {
		sec++
		m.ObserveSecond(sec, []model.RawReading{reading(1, 0, sec), reading(2, 0, sec)})
	}
	// Objects vanish, but the reader keeps emitting mis-stamped readings.
	for i := 0; i < 40; i++ {
		sec++
		m.ObserveSecond(sec, []model.RawReading{{Object: 1, Reader: 0, Time: sec + 3}})
	}
	if got := m.State(0); got != Live {
		t.Fatalf("state = %v, want live (mis-stamped readings prove liveness)", got)
	}
}

// TestSnapshotFields sanity-checks the externally served record.
func TestSnapshotFields(t *testing.T) {
	m := mustMonitor(t, 2)
	m.ObserveSecond(1, []model.RawReading{reading(1, 0, 1)})
	m.ObserveSecond(2, nil)
	m.ObserveSecond(3, nil)
	snap := m.Snapshot(3)
	if len(snap) != 2 {
		t.Fatalf("snapshot size %d, want 2", len(snap))
	}
	if snap[0].SilenceSeconds != 2 {
		t.Errorf("reader 0 silence = %d, want 2", snap[0].SilenceSeconds)
	}
	if snap[1].SilenceSeconds != -1 {
		t.Errorf("never-read reader silence = %d, want -1", snap[1].SilenceSeconds)
	}
	if snap[0].StateName != "live" {
		t.Errorf("state name %q, want live", snap[0].StateName)
	}
	if snap[0].LastRead != 1 {
		t.Errorf("lastRead %d, want 1", snap[0].LastRead)
	}
}

// TestReplayedSecondIgnored: feeding a second at or before the monitor's
// clock (the recovery replay overlap case) must not change anything.
func TestReplayedSecondIgnored(t *testing.T) {
	m := mustMonitor(t, 1)
	for sec := model.Time(1); sec <= 10; sec++ {
		m.ObserveSecond(sec, []model.RawReading{reading(1, 0, sec)})
	}
	if m.ObserveSecond(5, nil) {
		t.Fatal("replayed second changed state")
	}
	if got := m.Snapshot(10)[0].LastRead; got != 10 {
		t.Fatalf("lastRead = %d after replay, want 10", got)
	}
}
