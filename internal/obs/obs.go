// Package obs is the system's zero-dependency telemetry layer: a registry
// of typed counters, gauges, and fixed-bucket histograms with Prometheus
// text-format exposition (version 0.0.4), plus bounded rings for structured
// debug traces. The record path (Inc/Add/Set/Observe) is atomic and
// allocation-free, so metrics can live inside the particle filter's
// steady-state loop without disturbing its zero-allocation contract (the
// alloc-pin tests enforce this).
//
// Conventions: every metric of this repository is prefixed "repro_",
// durations are observed in seconds, and cumulative counters end in
// "_total". Metrics are registered once at construction (registration takes
// a lock and panics on programmer error: invalid or duplicate names);
// recording and rendering may then proceed concurrently from any goroutine.
package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets spans 10µs to 10s roughly exponentially — wide enough
// for both per-stage filter timings (tens of µs) and whole-query and HTTP
// latencies (ms to s).
var DefLatencyBuckets = []float64{
	1e-5, 2.5e-5, 1e-4, 2.5e-4, 1e-3, 2.5e-3, 1e-2, 2.5e-2, 0.1, 0.25, 1, 2.5, 10,
}

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; use NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	collectMu  sync.Mutex
	collectors []func()
}

// OnCollect registers fn to run at the start of every WriteTo, before any
// family renders. It exists for metrics that are expensive or pointless to
// keep current continuously (Go runtime stats): they refresh lazily at
// scrape time instead of on a ticker. Hooks run without the registry lock
// held, so they may freely Set gauges and Observe histograms.
func (r *Registry) OnCollect(fn func()) {
	r.collectMu.Lock()
	r.collectors = append(r.collectors, fn)
	r.collectMu.Unlock()
}

// family is one named metric family: HELP/TYPE emitted once, then every
// child (one per label-value combination) as a sample line.
type family struct {
	name, help, typ string
	labelNames      []string

	mu       sync.Mutex
	children map[string]child // key: joined label values
}

// child is anything that can render its sample lines.
type child interface {
	write(w *bufio.Writer, name, labels string)
	labelString() string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName matches the Prometheus metric and label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register creates a family, panicking on invalid or duplicate names —
// registration is construction-time code, and a bad name is a bug, not a
// runtime condition.
func (r *Registry) register(name, help, typ string, labelNames []string) *family {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, ln := range labelNames {
		if !validName(ln) || strings.HasPrefix(ln, "__") || ln == "le" {
			panic("obs: invalid label name " + strconv.Quote(ln) + " on " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("obs: metric " + name + " registered twice")
	}
	f := &family{name: name, help: help, typ: typ, labelNames: labelNames, children: make(map[string]child)}
	r.families[name] = f
	return f
}

// labelString renders {k="v",...} for the family's label names and the
// given values, escaping values per the exposition format.
func (f *family) labelString(values []string) string {
	if len(values) != len(f.labelNames) {
		panic("obs: " + f.name + ": got " + strconv.Itoa(len(values)) +
			" label values, want " + strconv.Itoa(len(f.labelNames)))
	}
	if len(values) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range values {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(f.labelNames[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// get returns the child for the label values, creating it with mk on first
// use. Lookup takes the family lock; the returned handle records lock-free,
// so callers should hold on to it rather than re-resolving per event.
func (f *family) get(values []string, mk func(labels string) child) child {
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := mk(f.labelString(values))
	f.children[key] = c
	return c
}

// Counter returns a new unlabeled monotone counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil)
	return f.get(nil, func(labels string) child { return &Counter{labels: labels} }).(*Counter)
}

// CounterVec returns a labeled counter family; children come from With.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, "counter", labelNames)}
}

// Gauge returns a new unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil)
	return f.get(nil, func(labels string) child { return &Gauge{labels: labels} }).(*Gauge)
}

// GaugeVec returns a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, "gauge", labelNames)}
}

// Histogram returns a new unlabeled histogram over the given bucket upper
// bounds (sorted ascending; +Inf is implicit). Nil buckets select
// DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, "histogram", nil)
	bs := checkBuckets(name, buckets)
	return f.get(nil, func(labels string) child { return newHistogram(bs, labels) }).(*Histogram)
}

// HistogramVec returns a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, "histogram", labelNames), bounds: checkBuckets(name, buckets)}
}

func checkBuckets(name string, buckets []float64) []float64 {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic("obs: " + name + ": bucket bounds not strictly increasing")
		}
	}
	if len(buckets) > 0 && math.IsInf(buckets[len(buckets)-1], 1) {
		panic("obs: " + name + ": +Inf bucket is implicit")
	}
	return buckets
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ fam *family }

// With returns the counter child for the label values (created on first
// use). Hold on to the handle for hot paths; With itself takes a lock.
func (v *CounterVec) With(values ...string) *Counter {
	return v.fam.get(values, func(labels string) child { return &Counter{labels: labels} }).(*Counter)
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ fam *family }

// With returns the gauge child for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.fam.get(values, func(labels string) child { return &Gauge{labels: labels} }).(*Gauge)
}

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct {
	fam    *family
	bounds []float64
}

// With returns the histogram child for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.fam.get(values, func(labels string) child { return newHistogram(v.bounds, labels) }).(*Histogram)
}

// Counter is a monotonically increasing uint64 counter.
type Counter struct {
	v      atomic.Uint64
	labels string
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set overwrites the counter's value. It exists to mirror an authoritative
// monotone counter kept elsewhere (the engine's cumulative Stats) at scrape
// time; never use it to go backwards.
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) labelString() string { return c.labels }

func (c *Counter) write(w *bufio.Writer, name, labels string) {
	w.WriteString(name)
	w.WriteString(labels)
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(c.v.Load(), 10))
	w.WriteByte('\n')
}

// Gauge is a float64 value that can go up and down.
type Gauge struct {
	bits   atomic.Uint64
	labels string
}

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (atomically, via CAS).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) labelString() string { return g.labels }

func (g *Gauge) write(w *bufio.Writer, name, labels string) {
	w.WriteString(name)
	w.WriteString(labels)
	w.WriteByte(' ')
	w.WriteString(formatFloat(g.Value()))
	w.WriteByte('\n')
}

// Histogram counts observations into fixed buckets. Observe is atomic and
// allocation-free; cumulative bucket counts are computed at render time.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sumBits atomic.Uint64   // float64 bits of the sum of observations
	labels  string
}

func newHistogram(bounds []float64, labels string) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1), labels: labels}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) labelString() string { return h.labels }

func (h *Histogram) write(w *bufio.Writer, name, labels string) {
	// Bucket lines carry the child's labels plus le; splice le into the
	// existing brace set when present.
	bucketLabels := func(le string) string {
		if labels == "" {
			return `{le="` + le + `"}`
		}
		return labels[:len(labels)-1] + `,le="` + le + `"}`
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		w.WriteString(name)
		w.WriteString("_bucket")
		w.WriteString(bucketLabels(le))
		w.WriteByte(' ')
		w.WriteString(strconv.FormatUint(cum, 10))
		w.WriteByte('\n')
	}
	w.WriteString(name)
	w.WriteString("_sum")
	w.WriteString(labels)
	w.WriteByte(' ')
	w.WriteString(formatFloat(h.Sum()))
	w.WriteByte('\n')
	w.WriteString(name)
	w.WriteString("_count")
	w.WriteString(labels)
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(cum, 10))
	w.WriteByte('\n')
}

// formatFloat renders a float the exposition format accepts.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo renders every family in Prometheus text format, families sorted
// by name and children by label string, so output is deterministic.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.collectMu.Lock()
	fns := make([]func(), len(r.collectors))
	copy(fns, r.collectors)
	r.collectMu.Unlock()
	for _, fn := range fns {
		fn()
	}

	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	for _, f := range fams {
		f.mu.Lock()
		children := make([]child, 0, len(f.children))
		for _, c := range f.children {
			children = append(children, c)
		}
		f.mu.Unlock()
		if len(children) == 0 {
			continue
		}
		sort.Slice(children, func(i, j int) bool { return children[i].labelString() < children[j].labelString() })
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		for _, c := range children {
			c.write(bw, f.name, c.labelString())
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, cw.err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	if err != nil && c.err == nil {
		c.err = err
	}
	return n, err
}

// ContentType is the Prometheus text exposition format media type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the registry as a Prometheus
// scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WriteTo(w)
	})
}
