package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// gcPauseBuckets span 100ns to 100ms: Go's concurrent collector keeps
// stop-the-world pauses in the tens of microseconds, so the default latency
// buckets (which start at 10µs) would collapse most pauses into two buckets.
var gcPauseBuckets = []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1}

// RegisterRuntimeMetrics adds Go runtime visibility to the registry:
// goroutine count, heap in-use bytes, a GC pause histogram, and a
// repro_build_info gauge carrying the toolchain version and VCS revision.
// The values refresh lazily on each scrape via an OnCollect hook —
// runtime.ReadMemStats briefly stops the world, so it runs only when someone
// is actually looking, never on a ticker.
func RegisterRuntimeMetrics(r *Registry) {
	goroutines := r.Gauge("repro_go_goroutines",
		"Goroutines at the time of the last scrape.")
	heap := r.Gauge("repro_go_heap_inuse_bytes",
		"Bytes in in-use heap spans at the time of the last scrape.")
	pause := r.Histogram("repro_go_gc_pause_seconds",
		"Stop-the-world GC pause durations, accumulated between scrapes.", gcPauseBuckets)
	build := r.GaugeVec("repro_build_info",
		"Always 1; the labels carry the Go toolchain version and VCS revision.",
		"goversion", "revision")

	revision := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
			}
		}
	}
	build.With(runtime.Version(), revision).Set(1)

	// lastGC tracks which GC cycles were already observed into the pause
	// histogram; MemStats.PauseNs is a 256-entry ring indexed by cycle.
	var mu sync.Mutex
	var lastGC uint32
	r.OnCollect(func() {
		mu.Lock()
		defer mu.Unlock()
		goroutines.Set(float64(runtime.NumGoroutine()))
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heap.Set(float64(ms.HeapInuse))
		from := lastGC
		if ms.NumGC-from > uint32(len(ms.PauseNs)) {
			// More cycles than the ring holds since the last scrape: the
			// older pauses are gone, observe what survived.
			from = ms.NumGC - uint32(len(ms.PauseNs))
		}
		for n := from; n < ms.NumGC; n++ {
			pause.Observe(float64(ms.PauseNs[n%uint32(len(ms.PauseNs))]) / 1e9)
		}
		lastGC = ms.NumGC
	})
}
