// Package trace is a stdlib-only, allocation-disciplined span tracer for the
// ingest and query pipelines. A *Context rides a request through every layer
// via context.Context; each layer appends spans (name, shard, start offset,
// duration, optional attributes) as it works. When the request finishes, the
// Tracer tail-samples the completed trace into a bounded ring: traces that
// were slow, deadline-exceeded, shed, or errored are always kept, everything
// else is kept with a configured probability. The ring is exported at
// /debug/traces as JSON and as Chrome trace-event format.
//
// Every method on *Context is safe on a nil receiver: untraced code paths
// (engine used as a library, benchmarks, requests on routes that are not
// traced) carry a nil *Context and pay only a pointer comparison. The hot
// filter kernel itself is never touched — stage spans are reconstructed from
// particle.RunStats after the fact — so the zero-allocation contract of the
// disabled path holds.
package trace

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// RouterShard is the shard value for spans that belong to the request as a
// whole (admission, gather, merge, encode) rather than to one shard.
const RouterShard = -1

// MaxSpans bounds the spans one trace retains. A query over a large candidate
// set emits four filter-stage spans per object; past the cap further spans
// are counted in Dropped instead of stored, keeping trace memory fixed.
const MaxSpans = 512

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation inside a trace. Start is the offset from the
// trace's begin time, so spans order on a single request-relative timeline.
type Span struct {
	Name  string
	Shard int // RouterShard for request-scoped spans
	Start time.Duration
	Dur   time.Duration
	Attrs []Attr
}

// Context accumulates the spans of one in-flight request. It is created by
// Tracer.Start, carried via context.Context (With/From), and closed by
// Tracer.Finish. Spans may be appended concurrently: the sharded engine's
// scatter goroutines all write into the same trace.
type Context struct {
	id    uint64
	kind  string
	begin time.Time

	mu      sync.Mutex
	spans   []Span
	dropped int
	// Keep-reason flags, set by the layer that observed the condition.
	deadline bool
	shed     bool
	errored  bool
}

// ID returns the trace identifier (0 on a nil context).
func (c *Context) ID() uint64 {
	if c == nil {
		return 0
	}
	return c.id
}

// IDString returns the trace ID as 16 hex digits ("" on a nil context).
func (c *Context) IDString() string {
	if c == nil {
		return ""
	}
	return fmt.Sprintf("%016x", c.id)
}

// Add appends a span with an explicit start time and duration. Used when the
// caller reconstructs stage timings after the fact (filter stage spans from
// particle.RunStats). No-op on a nil context.
func (c *Context) Add(name string, shard int, start time.Time, d time.Duration, attrs ...Attr) {
	if c == nil {
		return
	}
	off := start.Sub(c.begin)
	if off < 0 {
		off = 0
	}
	c.mu.Lock()
	if len(c.spans) >= MaxSpans {
		c.dropped++
	} else {
		c.spans = append(c.spans, Span{Name: name, Shard: shard, Start: off, Dur: d, Attrs: attrs})
	}
	c.mu.Unlock()
}

// Since appends a span covering start..now. No-op on a nil context.
func (c *Context) Since(name string, shard int, start time.Time) {
	if c == nil {
		return
	}
	c.Add(name, shard, start, time.Since(start))
}

// SetDeadline marks the trace as deadline-exceeded (always kept).
func (c *Context) SetDeadline() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.deadline = true
	c.mu.Unlock()
}

// SetShed marks the trace as shed by admission control (always kept).
func (c *Context) SetShed() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.shed = true
	c.mu.Unlock()
}

// SetError marks the trace as errored (always kept).
func (c *Context) SetError() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.errored = true
	c.mu.Unlock()
}

// DurationsOf sums the durations (in microseconds) of spans named name per
// shard, over shards [0, n). It returns nil when no such span was recorded —
// the caller (slow-query logging) then omits the field entirely.
func (c *Context) DurationsOf(name string, n int) []int64 {
	if c == nil || n <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int64
	for _, sp := range c.spans {
		if sp.Name != name || sp.Shard < 0 || sp.Shard >= n {
			continue
		}
		if out == nil {
			out = make([]int64, n)
		}
		out[sp.Shard] += sp.Dur.Microseconds()
	}
	return out
}

type ctxKey struct{}

// With returns a context carrying tc. A nil tc returns ctx unchanged.
func With(ctx context.Context, tc *Context) context.Context {
	if tc == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tc)
}

// From extracts the trace from ctx; nil when ctx is nil or carries no trace.
// This is the disabled-tracing fast path: one map-free context lookup, then
// every span call short-circuits on the nil receiver.
func From(ctx context.Context) *Context {
	if ctx == nil {
		return nil
	}
	tc, _ := ctx.Value(ctxKey{}).(*Context)
	return tc
}
