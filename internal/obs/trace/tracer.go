package trace

import (
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// Config selects the tracer's sampling posture.
type Config struct {
	// Sample is the probability an unremarkable trace (not slow, not
	// deadline-exceeded, not shed, not errored) is kept. Negative disables
	// tracing entirely: New returns nil and every request carries a nil
	// *Context.
	Sample float64
	// Slow marks traces at or above this wall time as always kept. Zero
	// disables the slowness rule.
	Slow time.Duration
	// Ring is the completed-trace ring capacity (<= 0: obs.DefaultRingSize).
	Ring int
	// Seed keys the splitmix64 trace-ID stream.
	Seed int64
}

// Tracer hands out trace Contexts and tail-samples completed traces into a
// bounded ring. Safe for concurrent use.
type Tracer struct {
	sample float64
	slow   time.Duration
	ring   *obs.Ring[Done]

	// src draws trace IDs and sampling coins; rng.Source is not safe for
	// concurrent use, so it hides behind mu.
	mu  sync.Mutex
	src *rng.Source
}

// New builds a Tracer, or returns nil when cfg.Sample is negative (tracing
// disabled). A nil *Tracer is not usable; callers gate on it explicitly.
func New(cfg Config) *Tracer {
	if cfg.Sample < 0 {
		return nil
	}
	if cfg.Sample > 1 {
		cfg.Sample = 1
	}
	return &Tracer{
		sample: cfg.Sample,
		slow:   cfg.Slow,
		ring:   obs.NewRing[Done](cfg.Ring),
		src:    rng.Derive(cfg.Seed, 0x7ace),
	}
}

// Start opens a trace of the given kind ("ingest", "range", "knn").
func (t *Tracer) Start(kind string) *Context {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	id := t.src.Uint64()
	t.mu.Unlock()
	return &Context{id: id, kind: kind, begin: time.Now()}
}

// StartWith opens a trace that adopts a propagated trace ID instead of
// drawing a fresh one — the receiving half of a forwarded cluster request.
// Both nodes' rings then hold halves of the same logical trace, stitched by
// ID at /debug/traces. A zero id falls back to Start.
func (t *Tracer) StartWith(id uint64, kind string) *Context {
	if t == nil {
		return nil
	}
	if id == 0 {
		return t.Start(kind)
	}
	return &Context{id: id, kind: kind, begin: time.Now()}
}

// Finish closes the trace and applies the tail-sampling decision: slow,
// deadline-exceeded, shed, and errored traces are always kept; the rest keep
// with probability Sample. No-op on a nil context.
func (t *Tracer) Finish(c *Context) {
	if t == nil || c == nil {
		return
	}
	total := time.Since(c.begin)
	c.mu.Lock()
	slow := t.slow > 0 && total >= t.slow
	keep := slow || c.deadline || c.shed || c.errored
	sampled := false
	if !keep && t.sample > 0 {
		t.mu.Lock()
		sampled = t.src.Float64() < t.sample
		t.mu.Unlock()
		keep = sampled
	}
	if !keep {
		c.mu.Unlock()
		return
	}
	d := Done{
		TraceID:      c.IDString(),
		Kind:         c.kind,
		Start:        c.begin,
		Micros:       total.Microseconds(),
		Slow:         slow,
		Deadline:     c.deadline,
		Shed:         c.shed,
		Error:        c.errored,
		Sampled:      sampled,
		DroppedSpans: c.dropped,
		Spans:        make([]SpanOut, len(c.spans)),
	}
	for i, sp := range c.spans {
		d.Spans[i] = SpanOut{
			Name:        sp.Name,
			Shard:       sp.Shard,
			StartMicros: sp.Start.Microseconds(),
			Micros:      sp.Dur.Microseconds(),
			Attrs:       sp.Attrs,
		}
	}
	c.mu.Unlock()
	t.ring.Add(d)
}

// Snapshot returns the retained traces, oldest first (never nil).
func (t *Tracer) Snapshot() []Done {
	if t == nil {
		return []Done{}
	}
	out := t.ring.Snapshot()
	if out == nil {
		out = []Done{}
	}
	return out
}

// Capacity returns the ring capacity (0 on a nil tracer).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.ring.Cap()
}

// Total returns how many traces were ever kept.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.ring.Total()
}

// SampleRate returns the configured probabilistic keep rate.
func (t *Tracer) SampleRate() float64 {
	if t == nil {
		return 0
	}
	return t.sample
}

// Done is one completed, kept trace as exported at /debug/traces.
type Done struct {
	TraceID string    `json:"traceId"`
	Kind    string    `json:"kind"`
	Start   time.Time `json:"start"`
	Micros  int64     `json:"micros"`
	// Keep reasons. Sampled marks a trace kept by probability alone.
	Slow     bool `json:"slow,omitempty"`
	Deadline bool `json:"deadline,omitempty"`
	Shed     bool `json:"shed,omitempty"`
	Error    bool `json:"error,omitempty"`
	Sampled  bool `json:"sampled,omitempty"`
	// DroppedSpans counts spans discarded past the MaxSpans cap.
	DroppedSpans int       `json:"droppedSpans,omitempty"`
	Spans        []SpanOut `json:"spans"`
}

// SpanOut is one span of a completed trace, with times in microseconds
// relative to the trace start.
type SpanOut struct {
	Name        string `json:"name"`
	Shard       int    `json:"shard"` // -1: request-scoped (router) span
	StartMicros int64  `json:"startMicros"`
	Micros      int64  `json:"micros"`
	Attrs       []Attr `json:"attrs,omitempty"`
}
