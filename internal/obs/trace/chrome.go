package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteChrome renders completed traces in Chrome trace-event format (the
// JSON-array flavor consumed by chrome://tracing and Perfetto). Each trace
// becomes one process (pid = position in the ring, 1-based) so concurrent
// requests stay visually separate; within a trace, request-scoped spans land
// on thread 0 ("router") and shard-scoped spans on thread shard+1
// ("shard N"), which renders a scatter/gather fan-out as a per-shard
// timeline. Timestamps are microseconds relative to each trace's start.
//
// The output is deterministic for a given input: metadata events first
// (process name, then thread names in tid order), then the duration events in
// recorded span order.
func WriteChrome(w io.Writer, traces []Done) error {
	bw := &chromeWriter{w: w}
	bw.raw("{\"traceEvents\":[")
	first := true
	sep := func() {
		if !first {
			bw.raw(",\n")
		}
		first = false
	}
	for i, tr := range traces {
		pid := i + 1
		sep()
		bw.event(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
			pid, quote(fmt.Sprintf("%s %s", tr.Kind, tr.TraceID)))
		// One thread-name event per tid present in this trace.
		tids := map[int]bool{}
		for _, sp := range tr.Spans {
			tids[tidOf(sp.Shard)] = true
		}
		order := make([]int, 0, len(tids))
		for tid := range tids {
			order = append(order, tid)
		}
		sort.Ints(order)
		for _, tid := range order {
			name := "router"
			if tid > 0 {
				name = fmt.Sprintf("shard %d", tid-1)
			}
			sep()
			bw.event(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				pid, tid, quote(name))
		}
		for _, sp := range tr.Spans {
			sep()
			bw.event(`{"ph":"X","pid":%d,"tid":%d,"name":%s,"ts":%d,"dur":%d%s}`,
				pid, tidOf(sp.Shard), quote(sp.Name), sp.StartMicros, sp.Micros, argsOf(sp.Attrs))
		}
	}
	bw.raw("]}\n")
	return bw.err
}

// tidOf maps a span's shard to a Chrome thread ID: the router timeline is
// thread 0, shard k is thread k+1.
func tidOf(shard int) int {
	if shard < 0 {
		return 0
	}
	return shard + 1
}

// argsOf renders span attributes as a trace-event args object, preserving
// the recorded attribute order.
func argsOf(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	out := `,"args":{`
	for i, a := range attrs {
		if i > 0 {
			out += ","
		}
		out += quote(a.Key) + ":" + quote(a.Value)
	}
	return out + "}"
}

// quote JSON-escapes a string. json.Marshal on a string cannot fail.
func quote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// chromeWriter accumulates the first write error so the happy path needs no
// per-event error checks.
type chromeWriter struct {
	w   io.Writer
	err error
}

func (c *chromeWriter) raw(s string) {
	if c.err == nil {
		_, c.err = io.WriteString(c.w, s)
	}
}

func (c *chromeWriter) event(format string, args ...any) {
	c.raw(fmt.Sprintf(format, args...))
}
