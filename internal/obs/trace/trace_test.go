package trace

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestNilContextSafe pins the disabled-tracing contract: every method is a
// no-op on a nil *Context, and With/From pass nil through untouched.
func TestNilContextSafe(t *testing.T) {
	var c *Context
	c.Add("x", 0, time.Now(), time.Millisecond)
	c.Since("y", RouterShard, time.Now())
	c.SetDeadline()
	c.SetShed()
	c.SetError()
	if c.ID() != 0 || c.IDString() != "" {
		t.Errorf("nil context ID = %d %q, want 0 \"\"", c.ID(), c.IDString())
	}
	if d := c.DurationsOf("x", 4); d != nil {
		t.Errorf("nil context DurationsOf = %v, want nil", d)
	}
	ctx := context.Background()
	if With(ctx, nil) != ctx {
		t.Error("With(ctx, nil) must return ctx unchanged")
	}
	if From(ctx) != nil || From(nil) != nil {
		t.Error("From without a trace must return nil")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New(Config{Sample: 1, Seed: 7})
	tc := tr.Start("knn")
	if tc == nil {
		t.Fatal("Start returned nil on an enabled tracer")
	}
	ctx := With(context.Background(), tc)
	if From(ctx) != tc {
		t.Fatal("From did not recover the context's trace")
	}
	if len(tc.IDString()) != 16 {
		t.Fatalf("IDString %q, want 16 hex digits", tc.IDString())
	}
}

// TestTailSampling checks every keep rule: slow, deadline, shed, errored
// traces survive regardless of the sample rate; unremarkable traces follow
// the probabilistic coin.
func TestTailSampling(t *testing.T) {
	mark := []struct {
		name string
		set  func(*Context)
		get  func(Done) bool
	}{
		{"deadline", (*Context).SetDeadline, func(d Done) bool { return d.Deadline }},
		{"shed", (*Context).SetShed, func(d Done) bool { return d.Shed }},
		{"error", (*Context).SetError, func(d Done) bool { return d.Error }},
	}
	for _, m := range mark {
		tr := New(Config{Sample: 0, Seed: 3})
		tc := tr.Start("range")
		m.set(tc)
		tr.Finish(tc)
		got := tr.Snapshot()
		if len(got) != 1 || !m.get(got[0]) {
			t.Errorf("%s-marked trace: kept %d with flag %v, want 1 kept and flagged", m.name, len(got), got)
		}
	}

	// Sample 0 and no flags: dropped.
	tr := New(Config{Sample: 0, Seed: 3})
	tr.Finish(tr.Start("range"))
	if n := len(tr.Snapshot()); n != 0 {
		t.Errorf("unremarkable trace at sample 0: kept %d, want 0", n)
	}

	// Sample 1: everything kept, marked as probabilistically sampled.
	tr = New(Config{Sample: 1, Seed: 3})
	tr.Finish(tr.Start("range"))
	got := tr.Snapshot()
	if len(got) != 1 || !got[0].Sampled {
		t.Errorf("sample-1 trace: %+v, want 1 kept with Sampled", got)
	}

	// Slow rule: a 1ns threshold marks any real request slow.
	tr = New(Config{Sample: 0, Slow: time.Nanosecond, Seed: 3})
	tc := tr.Start("range")
	time.Sleep(time.Microsecond)
	tr.Finish(tc)
	got = tr.Snapshot()
	if len(got) != 1 || !got[0].Slow {
		t.Errorf("slow trace: %+v, want 1 kept with Slow", got)
	}

	// Negative sample disables the tracer entirely.
	if New(Config{Sample: -1}) != nil {
		t.Error("New with negative Sample must return nil")
	}
	var nilT *Tracer
	if nilT.Start("x") != nil || nilT.Capacity() != 0 || nilT.Total() != 0 {
		t.Error("nil tracer must hand out nil contexts and zero stats")
	}
	if s := nilT.Snapshot(); s == nil || len(s) != 0 {
		t.Error("nil tracer Snapshot must be empty, not nil")
	}
}

func TestSpanCapAndDrop(t *testing.T) {
	tr := New(Config{Sample: 1, Seed: 1})
	tc := tr.Start("ingest")
	at := time.Now()
	for i := 0; i < MaxSpans+10; i++ {
		tc.Add("s", 0, at, time.Microsecond)
	}
	tr.Finish(tc)
	got := tr.Snapshot()
	if len(got) != 1 {
		t.Fatalf("kept %d traces, want 1", len(got))
	}
	if len(got[0].Spans) != MaxSpans || got[0].DroppedSpans != 10 {
		t.Errorf("spans=%d dropped=%d, want %d and 10", len(got[0].Spans), got[0].DroppedSpans, MaxSpans)
	}
}

func TestDurationsOf(t *testing.T) {
	tr := New(Config{Sample: 1, Seed: 1})
	tc := tr.Start("knn")
	at := time.Now()
	tc.Add("evaluate", 0, at, 5*time.Millisecond)
	tc.Add("evaluate", 2, at, 3*time.Millisecond)
	tc.Add("evaluate", 2, at, 1*time.Millisecond)
	tc.Add("gather", RouterShard, at, time.Millisecond) // router span: excluded
	got := tc.DurationsOf("evaluate", 4)
	want := []int64{5000, 0, 4000, 0}
	if len(got) != len(want) {
		t.Fatalf("DurationsOf = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DurationsOf = %v, want %v", got, want)
		}
	}
	if d := tc.DurationsOf("missing", 4); d != nil {
		t.Errorf("DurationsOf(missing) = %v, want nil", d)
	}
}

// TestTraceIDsDeterministic pins the ID stream to the seed: two tracers with
// the same seed hand out the same IDs, different seeds diverge.
func TestTraceIDsDeterministic(t *testing.T) {
	a, b, c := New(Config{Seed: 42}), New(Config{Seed: 42}), New(Config{Seed: 43})
	ida, idb, idc := a.Start("x").ID(), b.Start("x").ID(), c.Start("x").ID()
	if ida != idb {
		t.Errorf("same seed produced different trace IDs: %x vs %x", ida, idb)
	}
	if ida == idc {
		t.Errorf("different seeds produced the same trace ID: %x", ida)
	}
	if strings.Repeat("0", 16) == a.Start("x").IDString() {
		t.Error("trace ID stream stuck at zero")
	}
}
