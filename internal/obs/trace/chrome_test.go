package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestWriteChromeGolden pins the Chrome trace-event rendering byte for byte:
// metadata events first (process name, thread names in tid order), then
// duration events in recorded span order, with microsecond timestamps
// relative to the trace start. The fixture is a two-shard kNN scatter next
// to a single-span ingest, exercising router and shard timelines, attrs, and
// multi-trace pid separation.
func TestWriteChromeGolden(t *testing.T) {
	traces := []Done{
		{
			TraceID: "00000000deadbeef",
			Kind:    "knn",
			Micros:  900,
			Spans: []SpanOut{
				{Name: "gather", Shard: RouterShard, StartMicros: 0, Micros: 100},
				{Name: "evaluate", Shard: 0, StartMicros: 100, Micros: 400,
					Attrs: []Attr{{Key: "object", Value: "7"}}},
				{Name: "evaluate", Shard: 1, StartMicros: 100, Micros: 300},
				{Name: "merge", Shard: RouterShard, StartMicros: 500, Micros: 50},
			},
		},
		{
			TraceID: "0000000000c0ffee",
			Kind:    "ingest",
			Micros:  120,
			Spans: []SpanOut{
				{Name: "reorder", Shard: RouterShard, StartMicros: 0, Micros: 120},
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, traces); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[{"ph":"M","pid":1,"name":"process_name","args":{"name":"knn 00000000deadbeef"}},
{"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"router"}},
{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"shard 0"}},
{"ph":"M","pid":1,"tid":2,"name":"thread_name","args":{"name":"shard 1"}},
{"ph":"X","pid":1,"tid":0,"name":"gather","ts":0,"dur":100},
{"ph":"X","pid":1,"tid":1,"name":"evaluate","ts":100,"dur":400,"args":{"object":"7"}},
{"ph":"X","pid":1,"tid":2,"name":"evaluate","ts":100,"dur":300},
{"ph":"X","pid":1,"tid":0,"name":"merge","ts":500,"dur":50},
{"ph":"M","pid":2,"name":"process_name","args":{"name":"ingest 0000000000c0ffee"}},
{"ph":"M","pid":2,"tid":0,"name":"thread_name","args":{"name":"router"}},
{"ph":"X","pid":2,"tid":0,"name":"reorder","ts":0,"dur":120}]}
`
	if got := buf.String(); got != want {
		t.Errorf("chrome output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The output must be valid JSON with the documented shape.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 11 {
		t.Errorf("traceEvents length = %d, want 11", len(doc.TraceEvents))
	}
}

// TestWriteChromeEmpty renders a valid, empty document with no traces.
func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "{\"traceEvents\":[]}\n" {
		t.Errorf("empty chrome output = %q", got)
	}
}

// TestWriteChromeLiveTracer renders a trace produced by the real
// Context/Tracer pipeline, ensuring the exporter agrees with the recorder
// about offsets (negative clamped to zero) and shard-to-tid mapping.
func TestWriteChromeLiveTracer(t *testing.T) {
	tr := New(Config{Sample: 1, Seed: 9})
	tc := tr.Start("range")
	tc.Add("early", RouterShard, time.Now().Add(-time.Hour), time.Millisecond) // clamps to offset 0
	tc.Since("evaluate", 3, time.Now())
	tr.Finish(tc)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{`"ts":0`, `"tid":4`, `"name":"shard 3"`, `"name":"router"`} {
		if !bytes.Contains([]byte(out), []byte(frag)) {
			t.Errorf("chrome output missing %s:\n%s", frag, out)
		}
	}
}
