package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// render writes the registry and strict-parses the result, failing the test
// on any grammar or invariant violation.
func render(t *testing.T, r *Registry) map[string]*Family {
	t.Helper()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	fams, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("own output fails strict parse: %v\n%s", err, b.String())
	}
	return fams
}

func TestCounterGaugeRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("repro_events_total", "cumulative events")
	g := r.Gauge("repro_depth", "current depth")
	c.Inc()
	c.Add(41)
	g.Set(2.5)
	g.Add(-0.5)

	fams := render(t, r)
	if v := fams["repro_events_total"].Samples[0].Value; v != 42 {
		t.Errorf("counter = %v, want 42", v)
	}
	if typ := fams["repro_events_total"].Type; typ != "counter" {
		t.Errorf("type = %q", typ)
	}
	if v := fams["repro_depth"].Samples[0].Value; v != 2 {
		t.Errorf("gauge = %v, want 2", v)
	}
	if help := fams["repro_depth"].Help; help != "current depth" {
		t.Errorf("help = %q", help)
	}
}

func TestCounterSetMirrors(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("repro_mirror_total", "scrape-time mirror")
	c.Set(1234)
	if got := c.Value(); got != 1234 {
		t.Fatalf("Set/Value = %d", got)
	}
}

func TestVecChildrenAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("repro_http_requests_total", "requests", "path", "code")
	v.With("/range", "200").Add(3)
	v.With("/knn", "400").Inc()
	v.With(`/we"ird\path`+"\n", "200").Inc()
	if v.With("/range", "200") != v.With("/range", "200") {
		t.Error("With is not idempotent")
	}

	fams := render(t, r)
	f := fams["repro_http_requests_total"]
	if len(f.Samples) != 3 {
		t.Fatalf("%d samples, want 3", len(f.Samples))
	}
	got := map[string]float64{}
	for _, s := range f.Samples {
		got[s.Labels["path"]+"|"+s.Labels["code"]] = s.Value
	}
	if got["/range|200"] != 3 || got["/knn|400"] != 1 {
		t.Errorf("samples = %v", got)
	}
	// The escaped label value round-trips through render + parse.
	if got[`/we"ird\path`+"\n|200"] != 1 {
		t.Errorf("escaped label lost: %v", got)
	}
}

func TestHistogramBucketsAndInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("repro_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5.565) > 1e-12 {
		t.Errorf("Sum = %v", h.Sum())
	}

	fams := render(t, r) // strict parse enforces monotone buckets, +Inf == _count
	f := fams["repro_latency_seconds"]
	want := map[string]float64{"0.01": 2, "0.1": 3, "1": 4, "+Inf": 5}
	for _, s := range f.Samples {
		if s.Name == "repro_latency_seconds_bucket" {
			if s.Value != want[s.Labels["le"]] {
				t.Errorf("bucket le=%s = %v, want %v", s.Labels["le"], s.Value, want[s.Labels["le"]])
			}
		}
		if s.Name == "repro_latency_seconds_count" && s.Value != 5 {
			t.Errorf("_count = %v", s.Value)
		}
	}
}

func TestHistogramVecLabeledBuckets(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("repro_stage_seconds", "stage latency", nil, "stage")
	v.With("predict").Observe(0.001)
	v.With("resample").Observe(0.5)
	fams := render(t, r)
	f := fams["repro_stage_seconds"]
	// Two label groups, each with full bucket set + _sum + _count.
	wantSamples := 2 * (len(DefLatencyBuckets) + 1 + 2)
	if len(f.Samples) != wantSamples {
		t.Errorf("%d samples, want %d", len(f.Samples), wantSamples)
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("repro_ok_total", "x")
	mustPanic("duplicate", func() { r.Counter("repro_ok_total", "x") })
	mustPanic("bad name", func() { r.Counter("0bad", "x") })
	mustPanic("bad label", func() { r.CounterVec("repro_l_total", "x", "0bad") })
	mustPanic("reserved le", func() { r.HistogramVec("repro_h", "x", nil, "le") })
	mustPanic("unsorted buckets", func() { r.Histogram("repro_b", "x", []float64{1, 1}) })
}

// TestRecordPathZeroAllocs pins the whole record path at zero allocations:
// this is what lets the particle filter's steady-state loop stay
// allocation-free with instrumentation enabled.
func TestRecordPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("repro_c_total", "x")
	g := r.Gauge("repro_g", "x")
	h := r.Histogram("repro_h_seconds", "x", nil)
	hc := r.HistogramVec("repro_hv_seconds", "x", nil, "stage").With("predict")
	for name, f := range map[string]func(){
		"counter.Inc":       func() { c.Inc() },
		"counter.Add":       func() { c.Add(3) },
		"gauge.Set":         func() { g.Set(1.5) },
		"gauge.Add":         func() { g.Add(0.5) },
		"histogram.Observe": func() { h.Observe(0.02) },
		"vec child.Observe": func() { hc.Observe(0.02) },
	} {
		if allocs := testing.AllocsPerRun(100, f); allocs != 0 {
			t.Errorf("%s allocates %v times per op, want 0", name, allocs)
		}
	}
}

func TestConcurrentRecordAndRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("repro_c_total", "x")
	h := r.Histogram("repro_h_seconds", "x", nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-4)
			}
		}()
	}
	for i := 0; i < 20; i++ {
		render(t, r)
	}
	wg.Wait()
	fams := render(t, r)
	if v := fams["repro_c_total"].Samples[0].Value; v != 4000 {
		t.Errorf("counter = %v, want 4000", v)
	}
	if h.Count() != 4000 {
		t.Errorf("histogram count = %d, want 4000", h.Count())
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample before family": `repro_x_total 1`,
		"TYPE without HELP":    "# TYPE repro_x_total counter\nrepro_x_total 1",
		"unknown type":         "# HELP repro_x x\n# TYPE repro_x frobnicator\nrepro_x 1",
		"bad value":            "# HELP repro_x x\n# TYPE repro_x gauge\nrepro_x one",
		"timestamp":            "# HELP repro_x x\n# TYPE repro_x gauge\nrepro_x 1 1712345",
		"duplicate series":     "# HELP repro_x x\n# TYPE repro_x gauge\nrepro_x 1\nrepro_x 2",
		"bad escape":           "# HELP repro_x x\n# TYPE repro_x counter\nrepro_x{a=\"\\t\"} 1",
		"unterminated labels":  "# HELP repro_x x\n# TYPE repro_x counter\nrepro_x{a=\"b\" 1",
		"HELP without TYPE":    "# HELP repro_x x\n",
		"decreasing buckets": "# HELP repro_h h\n# TYPE repro_h histogram\n" +
			"repro_h_bucket{le=\"1\"} 5\nrepro_h_bucket{le=\"2\"} 3\nrepro_h_bucket{le=\"+Inf\"} 5\n" +
			"repro_h_sum 1\nrepro_h_count 5",
		"count disagrees": "# HELP repro_h h\n# TYPE repro_h histogram\n" +
			"repro_h_bucket{le=\"+Inf\"} 5\nrepro_h_sum 1\nrepro_h_count 4",
		"missing +Inf": "# HELP repro_h h\n# TYPE repro_h histogram\n" +
			"repro_h_bucket{le=\"1\"} 5\nrepro_h_sum 1\nrepro_h_count 5",
	}
	for name, doc := range cases {
		if _, err := ParseText(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRing(t *testing.T) {
	r := NewRing[int](3)
	if got := r.Snapshot(); len(got) != 0 {
		t.Errorf("empty snapshot = %v", got)
	}
	r.Add(1)
	r.Add(2)
	if got := r.Snapshot(); got[0] != 1 || got[1] != 2 {
		t.Errorf("partial snapshot = %v", got)
	}
	r.Add(3)
	r.Add(4) // evicts 1
	r.Add(5) // evicts 2
	got := r.Snapshot()
	if len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Errorf("wrapped snapshot = %v", got)
	}
	if r.Total() != 5 {
		t.Errorf("total = %d", r.Total())
	}
	if NewRing[int](0).Cap() != DefaultRingSize {
		t.Error("default capacity not applied")
	}
}
