package obs

import "sync"

// DefaultRingSize is the capacity a Ring falls back to for n <= 0.
const DefaultRingSize = 256

// Ring is a bounded, mutex-guarded ring buffer retaining the last n entries
// added. It backs the filter-trace and slow-query debug endpoints: writers
// pay one lock and one copy per entry, readers get a point-in-time snapshot,
// and memory stays fixed no matter how long the process runs.
type Ring[T any] struct {
	mu    sync.Mutex
	buf   []T
	next  int
	full  bool
	total uint64
}

// NewRing returns a ring retaining the last n entries (n <= 0 selects
// DefaultRingSize).
func NewRing[T any](n int) *Ring[T] {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Ring[T]{buf: make([]T, n)}
}

// Add appends one entry, evicting the oldest when full.
func (r *Ring[T]) Add(v T) {
	r.mu.Lock()
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained entries, oldest first.
func (r *Ring[T]) Snapshot() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]T(nil), r.buf[:r.next]...)
	}
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Total returns how many entries were ever added (including evicted ones).
func (r *Ring[T]) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap returns the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// FilterTrace is one record of the per-object filter-trace ring: a single
// particle-filter Run or Advance (cache resume) with its per-stage wall
// times. Durations are microseconds for compact, human-readable JSON.
type FilterTrace struct {
	// Object is the filtered object's ID.
	Object int64 `json:"object"`
	// Shard is the engine shard that ran the filter (0 for a single-shard
	// system), so a trace entry attributes to a partition of the object space.
	Shard int `json:"shard"`
	// SimFrom and SimTo bound the simulated seconds the run advanced over.
	SimFrom int64 `json:"simFrom"`
	SimTo   int64 `json:"simTo"`
	// Steps is the number of simulated seconds stepped; Detections the
	// detected seconds incorporated; Resamples the systematic resampling
	// passes run on detected seconds.
	Steps      int `json:"steps"`
	Detections int `json:"detections"`
	Resamples  int `json:"resamples"`
	// Particles is the particle count of the resulting state, and ESS its
	// effective sample size (Ns means healthy, ~1 means degenerate).
	Particles int     `json:"particles"`
	ESS       float64 `json:"ess"`
	// Resumed marks a cache hit that advanced an existing state rather than
	// a full run from the first reading.
	Resumed bool `json:"resumed"`
	// Per-stage wall time in microseconds. Reweight includes the silent-
	// second negative update; Snap is the anchor-point discretization.
	PredictMicros  int64 `json:"predictMicros"`
	ReweightMicros int64 `json:"reweightMicros"`
	ResampleMicros int64 `json:"resampleMicros"`
	SnapMicros     int64 `json:"snapMicros"`
}
