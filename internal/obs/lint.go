package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a strict reader for the Prometheus text exposition format
// (version 0.0.4), used to verify the registry's own output and any
// /metrics endpoint built on it. It deliberately accepts only what this
// repository emits — HELP then TYPE then samples, no timestamps, no
// duplicate series — so a formatting regression fails loudly in tests
// instead of being silently tolerated by a lenient scraper.

// Sample is one parsed sample line.
type Sample struct {
	// Name is the full sample name (for histograms: base_bucket/_sum/_count).
	Name string
	// Labels holds the parsed, unescaped label pairs.
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// Family is one parsed metric family with its samples in file order.
type Family struct {
	Name, Help, Type string
	Samples          []Sample
}

// ParseText reads an exposition document and returns its families keyed by
// name, enforcing the strict grammar and the histogram invariants
// (monotone cumulative buckets, +Inf == _count, _sum present). Any
// violation returns an error naming the offending line.
func ParseText(r io.Reader) (map[string]*Family, error) {
	fams := make(map[string]*Family)
	var cur *Family
	seen := make(map[string]bool) // duplicate-series guard: name + sorted labels
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		fail := func(format string, args ...any) (map[string]*Family, error) {
			return nil, fmt.Errorf("line %d %q: %s", lineno, line, fmt.Sprintf(format, args...))
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := line[len("# HELP "):]
			name, help, _ := strings.Cut(rest, " ")
			if !validName(name) {
				return fail("invalid metric name in HELP")
			}
			if fams[name] != nil {
				return fail("second HELP for %s", name)
			}
			cur = &Family{Name: name, Help: unescapeHelp(help)}
			fams[name] = cur
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := line[len("# TYPE "):]
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return fail("TYPE missing type")
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fail("unknown type %q", typ)
			}
			if cur == nil || cur.Name != name {
				return fail("TYPE for %s not directly after its HELP", name)
			}
			if cur.Type != "" {
				return fail("second TYPE for %s", name)
			}
			if len(cur.Samples) > 0 {
				return fail("TYPE for %s after its samples", name)
			}
			cur.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			return fail("comment is neither HELP nor TYPE")
		}
		s, err := parseSample(line)
		if err != nil {
			return fail("%v", err)
		}
		fam := familyFor(fams, s.Name)
		if fam == nil {
			return fail("sample before its family's HELP/TYPE")
		}
		if fam != cur {
			return fail("sample for %s interleaved into family %s", fam.Name, cur.Name)
		}
		key := seriesKey(s)
		if seen[key] {
			return fail("duplicate series")
		}
		seen[key] = true
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range fams {
		if f.Type == "" {
			return nil, fmt.Errorf("family %s: HELP without TYPE", f.Name)
		}
		if len(f.Samples) == 0 {
			return nil, fmt.Errorf("family %s: no samples", f.Name)
		}
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// familyFor resolves a sample name to its declared family: exact for
// counters and gauges, base name for histogram _bucket/_sum/_count series.
func familyFor(fams map[string]*Family, name string) *Family {
	if f := fams[name]; f != nil && f.Type != "histogram" {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if f := fams[base]; f != nil && f.Type == "histogram" {
				return f
			}
		}
	}
	return nil
}

func seriesKey(s Sample) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range keys {
		b.WriteByte('\xff')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Labels[k])
	}
	return b.String()
}

// parseSample parses `name{label="value",...} value` (no timestamps).
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i >= len(line) {
				return s, fmt.Errorf("unterminated label set")
			}
			if line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			lname := line[i:j]
			if !validName(lname) {
				return s, fmt.Errorf("invalid label name %q", lname)
			}
			if _, dup := s.Labels[lname]; dup {
				return s, fmt.Errorf("duplicate label %q", lname)
			}
			if j+1 >= len(line) || line[j+1] != '"' {
				return s, fmt.Errorf("label %q: value not quoted", lname)
			}
			val, rest, err := parseQuoted(line[j+1:])
			if err != nil {
				return s, fmt.Errorf("label %q: %v", lname, err)
			}
			s.Labels[lname] = val
			i = len(line) - len(rest)
			if i < len(line) && line[i] == ',' {
				i++
			} else if i >= len(line) || line[i] != '}' {
				return s, fmt.Errorf("expected ',' or '}' after label %q", lname)
			}
		}
	}
	if i >= len(line) || line[i] != ' ' {
		return s, fmt.Errorf("missing value separator")
	}
	valstr := line[i+1:]
	if strings.ContainsRune(valstr, ' ') {
		return s, fmt.Errorf("trailing tokens after value (timestamps are not emitted)")
	}
	v, err := parseValue(valstr)
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

// parseQuoted consumes a double-quoted, escaped label value and returns it
// with the remainder of the line.
func parseQuoted(in string) (val, rest string, err error) {
	if in == "" || in[0] != '"' {
		return "", "", fmt.Errorf("expected opening quote")
	}
	var b strings.Builder
	i := 1
	for i < len(in) {
		c := in[i]
		switch c {
		case '"':
			return b.String(), in[i+1:], nil
		case '\\':
			if i+1 >= len(in) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch in[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", in[i+1])
			}
			i += 2
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", "", fmt.Errorf("unterminated quote")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

// checkHistogram enforces the per-series histogram invariants: for every
// label combination, le values strictly increase in listed order, the
// cumulative counts never decrease, the +Inf bucket exists and equals
// _count, _sum exists, and an empty histogram has zero sum.
func checkHistogram(f *Family) error {
	type series struct {
		lastLe     float64
		lastCount  float64
		infCount   float64
		hasInf     bool
		sum, count float64
		hasSum     bool
		hasCount   bool
	}
	groups := make(map[string]*series)
	groupKey := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(labels[k])
			b.WriteByte('\xff')
		}
		return b.String()
	}
	get := func(labels map[string]string) *series {
		k := groupKey(labels)
		g := groups[k]
		if g == nil {
			g = &series{lastLe: math.Inf(-1)}
			groups[k] = g
		}
		return g
	}
	for _, s := range f.Samples {
		switch {
		case s.Name == f.Name+"_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket without le label", f.Name)
			}
			bound, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("%s: bad le %q", f.Name, le)
			}
			g := get(s.Labels)
			if !(bound > g.lastLe) {
				return fmt.Errorf("%s: le %q out of order", f.Name, le)
			}
			if s.Value < g.lastCount {
				return fmt.Errorf("%s: cumulative bucket count decreased at le=%q", f.Name, le)
			}
			g.lastLe, g.lastCount = bound, s.Value
			if math.IsInf(bound, 1) {
				g.hasInf, g.infCount = true, s.Value
			}
		case s.Name == f.Name+"_sum":
			g := get(s.Labels)
			if g.hasSum {
				return fmt.Errorf("%s: duplicate _sum", f.Name)
			}
			g.hasSum, g.sum = true, s.Value
		case s.Name == f.Name+"_count":
			g := get(s.Labels)
			if g.hasCount {
				return fmt.Errorf("%s: duplicate _count", f.Name)
			}
			g.hasCount, g.count = true, s.Value
		default:
			return fmt.Errorf("%s: unexpected histogram sample %s", f.Name, s.Name)
		}
	}
	for _, g := range groups {
		if !g.hasInf {
			return fmt.Errorf("%s: missing +Inf bucket", f.Name)
		}
		if !g.hasSum || !g.hasCount {
			return fmt.Errorf("%s: missing _sum or _count", f.Name)
		}
		if g.count != g.infCount {
			return fmt.Errorf("%s: _count %v != +Inf bucket %v", f.Name, g.count, g.infCount)
		}
		if g.count == 0 && g.sum != 0 {
			return fmt.Errorf("%s: empty histogram with nonzero sum %v", f.Name, g.sum)
		}
	}
	return nil
}
