package repro_test

// Black-box tests of the public facade: everything a downstream user touches
// must be reachable through the repro package alone.

import (
	"encoding/json"
	"math"
	"testing"

	"repro"
)

// world builds the standard test fixture through the public API only.
func world(t *testing.T, objects int, seed int64) (*repro.System, *repro.Simulator) {
	t.Helper()
	plan := repro.DefaultOffice()
	dep := repro.MustDeployUniform(plan, repro.DefaultReaders, repro.DefaultActivationRange)
	cfg := repro.DefaultConfig()
	cfg.Seed = seed
	sys := repro.MustNewSystem(plan, dep, cfg)
	tc := repro.DefaultTraceConfig()
	tc.NumObjects = objects
	tc.DwellMin, tc.DwellMax = 2, 8
	sim := repro.MustNewSimulator(sys.Graph(), repro.NewSensor(dep), tc, seed+1)
	return sys, sim
}

func TestPublicAPIRoundTrip(t *testing.T) {
	sys, sim := world(t, 15, 1)
	for i := 0; i < 150; i++ {
		tm, raws := sim.Step()
		sys.Ingest(tm, raws)
	}
	// Range query.
	rs := sys.RangeQuery(repro.RectWH(10, 9, 20, 8))
	for o, p := range rs {
		if p < -1e-9 || p > 1+1e-9 {
			t.Errorf("P(o%d) = %v", o, p)
		}
	}
	// kNN query + ranking helpers.
	knn := sys.KNNQuery(repro.Pt(35, 12), 3)
	top := repro.TopKObjects(knn, 3)
	if len(top) > 3 {
		t.Errorf("TopKObjects returned %d", len(top))
	}
	// Metrics.
	truth := sim.TrueKNN(repro.Pt(35, 12), 3)
	hr := repro.HitRate(knn.Objects(), truth)
	if hr < 0 || hr > 1 {
		t.Errorf("hit rate %v", hr)
	}
	tr := repro.ResultSet{}
	for _, o := range sim.TrueRange(repro.RectWH(10, 9, 20, 8)) {
		tr[o] = 1
	}
	if kl := repro.KLDivergence(tr, rs); kl < 0 || math.IsNaN(kl) {
		t.Errorf("KL = %v", kl)
	}
}

func TestPublicContinuousMonitors(t *testing.T) {
	sys, sim := world(t, 12, 2)
	for i := 0; i < 120; i++ {
		tm, raws := sim.Step()
		sys.Ingest(tm, raws)
	}
	zone := repro.RectWH(2, 11, 20, 14)
	cr := repro.NewContinuousRange(zone, 0.5)
	ck := repro.NewContinuousKNN(repro.Pt(35, 12), 2)
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			tm, raws := sim.Step()
			sys.Ingest(tm, raws)
		}
		cr.Update(sys.RangeQuery(zone))
		ck.Update(sys.KNNQuery(repro.Pt(35, 12), 2))
	}
	if got := len(ck.Result()); got > 2 {
		t.Errorf("continuous kNN tracks %d objects", got)
	}
}

func TestPublicLocalizationAndPairs(t *testing.T) {
	sys, sim := world(t, 10, 3)
	for i := 0; i < 150; i++ {
		tm, raws := sim.Step()
		sys.Ingest(tm, raws)
	}
	locs := sys.LocalizeAll()
	if len(locs) == 0 {
		t.Fatal("no localizations")
	}
	for _, l := range locs {
		_ = l.Mean
		if l.Entropy < 0 {
			t.Errorf("entropy %v", l.Entropy)
		}
	}
	pairs := sys.ClosestPairs(2)
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Dist < pairs[i-1].Dist {
			t.Error("pairs not sorted")
		}
	}
}

func TestPublicSerialization(t *testing.T) {
	plan := repro.TwoStoryOffice()
	data, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := repro.DecodePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan2.Rooms()) != len(plan.Rooms()) {
		t.Error("plan round trip lost rooms")
	}
	dep := repro.MustDeployUniform(plan, 38, 2)
	depData, err := json.Marshal(dep)
	if err != nil {
		t.Fatal(err)
	}
	dep2, err := repro.DecodeDeployment(depData, plan2)
	if err != nil {
		t.Fatal(err)
	}
	if dep2.NumReaders() != dep.NumReaders() {
		t.Error("deployment round trip lost readers")
	}
}

func TestPublicCustomPlanBuilder(t *testing.T) {
	b := repro.NewPlanBuilder()
	h := b.AddHallway("main", repro.Seg(repro.Pt(0, 10), repro.Pt(40, 10)), 2)
	b.AddRoom("lab", repro.RectWH(5, 3, 8, 6), h)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dep := repro.NewDeployment([]repro.Reader{
		{Pos: repro.Pt(10, 10), Range: 2},
		{Pos: repro.Pt(30, 10), Range: 2},
	})
	if _, err := repro.NewSystem(plan, dep, repro.DefaultConfig()); err != nil {
		t.Fatalf("custom plan system: %v", err)
	}
}

func TestPublicRandomOffice(t *testing.T) {
	plan := repro.RandomOffice(7, 2)
	if err := plan.Validate(); err != nil {
		t.Fatalf("random office invalid: %v", err)
	}
	if _, err := repro.BuildWalkGraph(plan); err != nil {
		t.Fatalf("walk graph: %v", err)
	}
}

func TestPublicHistoricalQueries(t *testing.T) {
	plan := repro.DefaultOffice()
	dep := repro.MustDeployUniform(plan, repro.DefaultReaders, repro.DefaultActivationRange)
	cfg := repro.DefaultConfig()
	cfg.KeepHistory = true
	sys := repro.MustNewSystem(plan, dep, cfg)
	tc := repro.DefaultTraceConfig()
	tc.NumObjects = 10
	sim := repro.MustNewSimulator(sys.Graph(), repro.NewSensor(dep), tc, 9)
	for i := 0; i < 200; i++ {
		tm, raws := sim.Step()
		sys.Ingest(tm, raws)
	}
	rs := sys.RangeQueryAt(plan.Bounds(), 100)
	for o, p := range rs {
		if p < -1e-9 || p > 1+1e-9 {
			t.Errorf("historical P(o%d) = %v", o, p)
		}
	}
}
